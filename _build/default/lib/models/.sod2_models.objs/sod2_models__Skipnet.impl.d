lib/models/skipnet.ml: Blocks Dim List Op Shape
