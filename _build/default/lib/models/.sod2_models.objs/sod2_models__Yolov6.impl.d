lib/models/yolov6.ml: Blocks Dim Op Shape
