lib/models/blocks.ml: Graph Op Printf Rng Tensor
