lib/models/skipnet.mli: Graph
