lib/models/conformer.mli: Graph
