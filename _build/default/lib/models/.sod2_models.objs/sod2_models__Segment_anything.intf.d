lib/models/segment_anything.mli: Graph
