lib/models/ranet.ml: Blocks Dim Op Shape
