lib/models/gpt_decoder.ml: Array Blocks Dim Env Graph List Op Option Printf Rng Shape String Tensor
