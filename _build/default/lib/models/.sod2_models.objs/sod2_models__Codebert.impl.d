lib/models/codebert.ml: Blocks Dim Op Shape
