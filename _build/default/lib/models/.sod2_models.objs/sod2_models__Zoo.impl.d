lib/models/zoo.ml: Array Blockdrop Codebert Conformer Convnet_aig Dgnet Env Float Graph List Op Printf Ranet Rng Sd_encoder Segment_anything Shape Skipnet String Tensor Yolov6
