lib/models/sd_encoder.ml: Blocks Dim List Op Shape
