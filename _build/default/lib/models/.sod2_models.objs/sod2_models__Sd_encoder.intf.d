lib/models/sd_encoder.mli: Graph
