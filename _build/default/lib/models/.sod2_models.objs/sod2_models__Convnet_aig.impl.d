lib/models/convnet_aig.ml: Blocks Dim List Op Shape
