lib/models/zoo.mli: Env Graph Rng Tensor
