lib/models/segment_anything.ml: Blocks Dim Op Shape
