lib/models/gpt_decoder.mli: Graph Rng Tensor
