lib/models/blocks.mli: Graph Op Shape
