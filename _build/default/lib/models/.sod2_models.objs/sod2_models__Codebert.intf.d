lib/models/codebert.mli: Graph
