lib/models/blockdrop.mli: Graph
