lib/models/blockdrop.ml: Blocks Dim List Op Shape
