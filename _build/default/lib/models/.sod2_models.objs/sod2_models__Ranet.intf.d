lib/models/ranet.mli: Graph
