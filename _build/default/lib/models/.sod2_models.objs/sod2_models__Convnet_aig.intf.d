lib/models/convnet_aig.mli: Graph
