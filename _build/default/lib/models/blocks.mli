(** Shared building blocks for the model zoo.

    A {!t} wraps a {!Graph.Builder} with a seeded weight generator and
    helpers for the composite layers the ten evaluation models share:
    convolution + batch-norm + activation, residual blocks, multi-head
    attention over a symbolic sequence length (driven by
    [Shape → Gather → Concat → Reshape] chains, exactly as ONNX exports of
    transformers look), feed-forward blocks, and gated
    [<Switch, Combine>] sections for the control-flow models. *)

type t

val create : seed:int -> t
val builder : t -> Graph.Builder.t
val finish : t -> outputs:Graph.tensor_id list -> Graph.t

(** {1 Inputs and parameters} *)

val input : t -> name:string -> Shape.t -> Graph.tensor_id
val weight : t -> int list -> Graph.tensor_id
(** Fresh random-normal constant (He-style 0.05 stddev). *)

val const_ints : t -> int list -> Graph.tensor_id
val scalar_i : t -> int -> Graph.tensor_id

val op1 : t -> Op.t -> Graph.tensor_id list -> Graph.tensor_id
(** Append an arbitrary single-output operator (escape hatch for layers the
    helpers below don't cover). *)

val transpose : t -> Graph.tensor_id -> int list -> Graph.tensor_id

(** {1 Primitive layers} *)

val conv2d :
  t -> ?stride:int -> ?pad:int -> ?groups:int -> ?bias:bool ->
  Graph.tensor_id -> cin:int -> cout:int -> k:int -> Graph.tensor_id

val conv1d :
  t -> ?stride:int -> ?pad:int -> ?groups:int ->
  Graph.tensor_id -> cin:int -> cout:int -> k:int -> Graph.tensor_id

val batch_norm : t -> Graph.tensor_id -> channels:int -> Graph.tensor_id
val group_norm : t -> Graph.tensor_id -> channels:int -> groups:int -> Graph.tensor_id
val layer_norm : t -> Graph.tensor_id -> dim:int -> Graph.tensor_id

val relu : t -> Graph.tensor_id -> Graph.tensor_id
val sigmoid : t -> Graph.tensor_id -> Graph.tensor_id
val silu : t -> Graph.tensor_id -> Graph.tensor_id
(** x · sigmoid x, built from [Sigmoid] and [Mul]. *)

val gelu : t -> Graph.tensor_id -> Graph.tensor_id
val add : t -> Graph.tensor_id -> Graph.tensor_id -> Graph.tensor_id
val mul : t -> Graph.tensor_id -> Graph.tensor_id -> Graph.tensor_id
val softmax : t -> ?axis:int -> Graph.tensor_id -> Graph.tensor_id

val max_pool : t -> ?stride:int -> ?pad:int -> k:int -> Graph.tensor_id -> Graph.tensor_id
val global_pool : t -> Graph.tensor_id -> Graph.tensor_id

val linear : t -> Graph.tensor_id -> cin:int -> cout:int -> Graph.tensor_id
(** MatMul with a [cin × cout] weight plus bias — applies to any
    [… × cin] tensor. *)

(** {1 Composite layers} *)

val conv_bn_act :
  t -> ?stride:int -> ?pad:int -> ?act:[ `Relu | `Silu | `None ] ->
  Graph.tensor_id -> cin:int -> cout:int -> k:int -> Graph.tensor_id

val residual_block :
  t -> ?stride:int -> Graph.tensor_id -> cin:int -> cout:int -> Graph.tensor_id
(** Two 3×3 conv-bn layers with identity (or 1×1-projected) shortcut. *)

(** {1 Symbolic shape plumbing} *)

val shape_dim : t -> Graph.tensor_id -> int -> Graph.tensor_id
(** [shape_dim t x i]: 1-element integer tensor holding dim [i] of [x] —
    a [Shape → Gather] chain the RDP analysis resolves symbolically. *)

val reshape_concat :
  t -> Graph.tensor_id -> pieces:Graph.tensor_id list -> Graph.tensor_id
(** Reshape [x] to the concatenation of 1-d integer pieces. *)

val reshape_static : t -> Graph.tensor_id -> int list -> Graph.tensor_id

(** {1 Attention and transformer blocks} *)

val mha :
  t -> Graph.tensor_id -> hidden:int -> heads:int -> Graph.tensor_id
(** Multi-head self-attention over [1 × S × hidden] with symbolic S. *)

val ffn :
  t -> Graph.tensor_id -> hidden:int -> inner:int -> Graph.tensor_id

val transformer_block :
  t -> Graph.tensor_id -> hidden:int -> heads:int -> inner:int -> Graph.tensor_id
(** Pre-LN transformer layer: LN → MHA → add → LN → FFN → add. *)

(** {1 Control flow} *)

val gate_pred :
  t -> Graph.tensor_id -> channels:int -> branches:int -> Graph.tensor_id
(** Gating subnet: GlobalAveragePool → Flatten → linear → ArgMax, producing
    an integer predicate in [\[0, branches)] that depends on the input
    {e values}. *)

val gated :
  t -> pred:Graph.tensor_id -> Graph.tensor_id ->
  (t -> Graph.tensor_id -> Graph.tensor_id) -> Graph.tensor_id
(** [gated t ~pred x f]: a [<Switch, Combine>] pair routing [x] either
    through the identity skip (branch 0) or through [f] (branch 1). *)

val gated2 :
  t -> pred:Graph.tensor_id -> Graph.tensor_id ->
  (t -> Graph.tensor_id -> Graph.tensor_id) ->
  (t -> Graph.tensor_id -> Graph.tensor_id) -> Graph.tensor_id
(** Two real alternatives (branch 0 = first function). *)
