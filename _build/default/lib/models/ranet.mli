(** RaNet (Resolution Adaptive Network): classification starts on a
    quarter-resolution copy; confidence gates either take an early exit or
    continue to higher-resolution sub-networks that fuse the coarse
    features.  Symbolic [H]×[W]. *)

val build : unit -> Graph.t
