(** BlockDrop: a policy network inspects the input once and emits a
    keep/drop predicate for every residual block; dropped blocks are
    bypassed through [<Switch, Combine>].  Symbolic [H]×[W]. *)

val n_gated : int
(** Number of gated blocks (= predicates the policy emits). *)

val build : unit -> Graph.t
