(* Conformer encoder over a symbolic time extent T: 2× strided conv
   subsampling, then blocks of half-FFN / self-attention / convolution
   module / half-FFN with a final LayerNorm (Gulati et al.). *)

let mel_bins = 80

let half_ffn t x ~hidden =
  let y = Blocks.layer_norm t x ~dim:hidden in
  let y = Blocks.ffn t y ~hidden ~inner:(hidden * 4) in
  let half = Graph.Builder.const (Blocks.builder t) ~name:"half" (Tensor.scalar_f 0.5) in
  Blocks.add t x (Blocks.mul t y half)

let conv_module t x ~hidden =
  let y = Blocks.layer_norm t x ~dim:hidden in
  (* [1, S, H] -> [1, H, S] for the 1-d convolutions *)
  let y = Blocks.transpose t y [ 0; 2; 1 ] in
  let y = Blocks.conv1d t y ~cin:hidden ~cout:(2 * hidden) ~k:1 in
  (* gated linear unit *)
  let halves =
    Graph.Builder.node (Blocks.builder t) (Op.Split { axis = 1; sizes = [ hidden; hidden ] })
      [ y ]
  in
  let y =
    match halves with
    | [ a; b ] -> Blocks.mul t a (Blocks.sigmoid t b)
    | _ -> assert false
  in
  let y = Blocks.conv1d t ~pad:7 ~groups:hidden y ~cin:hidden ~cout:hidden ~k:15 in
  let y = Blocks.batch_norm t y ~channels:hidden in
  let y = Blocks.silu t y in
  let y = Blocks.conv1d t y ~cin:hidden ~cout:hidden ~k:1 in
  let y = Blocks.transpose t y [ 0; 2; 1 ] in
  Blocks.add t x y

let build ?(blocks = 8) ?(hidden = 128) ?(heads = 4) () =
  let t = Blocks.create ~seed:102 in
  let audio =
    Blocks.input t ~name:"audio"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 1; Dim.of_sym "T"; Dim.of_int mel_bins ])
  in
  (* subsampling: T -> T/4, mel 80 -> 20, channels 32 *)
  let y = Blocks.conv_bn_act t ~stride:2 ~pad:1 audio ~cin:1 ~cout:32 ~k:3 in
  let y = Blocks.conv_bn_act t ~stride:2 ~pad:1 y ~cin:32 ~cout:32 ~k:3 in
  (* [1, 32, T/4, 20] -> [1, T/4, 32*20] -> linear to hidden *)
  let y = Blocks.transpose t y [ 0; 2; 1; 3 ] in
  let t4 = Blocks.shape_dim t y 1 in
  let y =
    Blocks.reshape_concat t y
      ~pieces:[ Blocks.const_ints t [ 1 ]; t4; Blocks.const_ints t [ 32 * (mel_bins / 4) ] ]
  in
  let y = Blocks.linear t y ~cin:(32 * (mel_bins / 4)) ~cout:hidden in
  let x = ref y in
  for _ = 1 to blocks do
    let y = half_ffn t !x ~hidden in
    let y' = Blocks.layer_norm t y ~dim:hidden in
    let y = Blocks.add t y (Blocks.mha t y' ~hidden ~heads) in
    let y = conv_module t y ~hidden in
    let y = half_ffn t y ~hidden in
    x := Blocks.layer_norm t y ~dim:hidden
  done;
  Blocks.finish t ~outputs:[ !x ]
