type t = {
  b : Graph.Builder.t;
  rng : Rng.t;
  mutable counter : int;
}

let create ~seed = { b = Graph.Builder.create (); rng = Rng.create seed; counter = 0 }
let builder t = t.b

let fresh t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s_%d" prefix t.counter

let finish t ~outputs =
  Graph.Builder.set_outputs t.b outputs;
  Graph.Builder.finish t.b

let input t ~name shape = Graph.Builder.input t.b ~name shape

let weight t dims =
  Graph.Builder.const t.b ~name:(fresh t "w")
    (Tensor.rand_normal t.rng ~stddev:0.05 dims)

let const_ints t l = Graph.Builder.const t.b ~name:(fresh t "c") (Tensor.of_int_list l)
let scalar_i t v = Graph.Builder.const t.b ~name:(fresh t "s") (Tensor.scalar_i v)

let node1 t op inputs = Graph.Builder.node1 t.b ~name:(fresh t (Op.name op)) op inputs
let op1 = node1

let conv2d t ?(stride = 1) ?(pad = 0) ?(groups = 1) ?(bias = true) x ~cin ~cout ~k =
  let w = weight t [ cout; cin / groups; k; k ] in
  let inputs =
    if bias then [ x; w; weight t [ cout ] ] else [ x; w ]
  in
  node1 t
    (Op.Conv { stride = (stride, stride); pads = (pad, pad, pad, pad);
               dilation = (1, 1); groups })
    inputs

let conv1d t ?(stride = 1) ?(pad = 0) ?(groups = 1) x ~cin ~cout ~k =
  let w = weight t [ cout; cin / groups; k ] in
  node1 t
    (Op.Conv1d { stride1 = stride; pads1 = (pad, pad); dilation1 = 1; groups1 = groups })
    [ x; w; weight t [ cout ] ]

let batch_norm t x ~channels =
  let ones = Graph.Builder.const t.b ~name:(fresh t "bn_s") (Tensor.full_f [ channels ] 1.0) in
  let zeros = Graph.Builder.const t.b ~name:(fresh t "bn_b") (Tensor.full_f [ channels ] 0.0) in
  let mean = Graph.Builder.const t.b ~name:(fresh t "bn_m") (Tensor.full_f [ channels ] 0.0) in
  let var = Graph.Builder.const t.b ~name:(fresh t "bn_v") (Tensor.full_f [ channels ] 1.0) in
  node1 t (Op.BatchNorm { eps = 1e-5 }) [ x; ones; zeros; mean; var ]

let group_norm t x ~channels ~groups =
  let gamma = Graph.Builder.const t.b ~name:(fresh t "gn_g") (Tensor.full_f [ channels ] 1.0) in
  let beta = Graph.Builder.const t.b ~name:(fresh t "gn_b") (Tensor.full_f [ channels ] 0.0) in
  node1 t (Op.GroupNorm { num_groups = groups; eps = 1e-5 }) [ x; gamma; beta ]

let layer_norm t x ~dim =
  let gamma = Graph.Builder.const t.b ~name:(fresh t "ln_g") (Tensor.full_f [ dim ] 1.0) in
  let beta = Graph.Builder.const t.b ~name:(fresh t "ln_b") (Tensor.full_f [ dim ] 0.0) in
  node1 t (Op.LayerNorm { eps = 1e-5 }) [ x; gamma; beta ]

let relu t x = node1 t (Op.Unary Op.Relu) [ x ]
let sigmoid t x = node1 t (Op.Unary Op.Sigmoid) [ x ]
let gelu t x = node1 t (Op.Unary Op.Gelu) [ x ]
let add t a b = node1 t (Op.Binary Op.Add) [ a; b ]
let mul t a b = node1 t (Op.Binary Op.Mul) [ a; b ]
let silu t x = mul t x (sigmoid t x)
let softmax t ?(axis = -1) x = node1 t (Op.Softmax { axis }) [ x ]

let max_pool t ?(stride = 2) ?(pad = 0) ~k x =
  node1 t
    (Op.MaxPool
       { kernel = (k, k); pool_stride = (stride, stride); pool_pads = (pad, pad, pad, pad) })
    [ x ]

let global_pool t x = node1 t Op.GlobalAveragePool [ x ]

let linear t x ~cin ~cout =
  let w = weight t [ cin; cout ] in
  let y = node1 t Op.MatMul [ x; w ] in
  add t y (weight t [ cout ])

let conv_bn_act t ?(stride = 1) ?(pad = 0) ?(act = `Relu) x ~cin ~cout ~k =
  let y = conv2d t ~stride ~pad ~bias:false x ~cin ~cout ~k in
  let y = batch_norm t y ~channels:cout in
  match act with
  | `Relu -> relu t y
  | `Silu -> silu t y
  | `None -> y

let residual_block t ?(stride = 1) x ~cin ~cout =
  let y = conv_bn_act t ~stride ~pad:1 x ~cin ~cout ~k:3 in
  let y = conv_bn_act t ~pad:1 ~act:`None y ~cin:cout ~cout ~k:3 in
  let shortcut =
    if stride = 1 && cin = cout then x
    else conv_bn_act t ~stride ~act:`None x ~cin ~cout ~k:1
  in
  relu t (add t y shortcut)

let shape_dim t x i =
  let s = node1 t Op.ShapeOf [ x ] in
  node1 t (Op.Gather { axis = 0 }) [ s; const_ints t [ i ] ]

let reshape_concat t x ~pieces =
  let target = node1 t (Op.Concat { axis = 0 }) pieces in
  node1 t Op.Reshape [ x; target ]

let reshape_static t x dims = node1 t Op.Reshape [ x; const_ints t dims ]

let transpose t x perm = node1 t (Op.Transpose perm) [ x ]

(* Self-attention over [1 × S × hidden]; the sequence extent S is read back
   with Shape operators, as ONNX transformer exports do. *)
let mha t x ~hidden ~heads =
  let dk = hidden / heads in
  let seq = shape_dim t x 1 in
  let q = linear t x ~cin:hidden ~cout:hidden in
  let k = linear t x ~cin:hidden ~cout:hidden in
  let v = linear t x ~cin:hidden ~cout:hidden in
  let split_heads y =
    (* [1, S, H] -> [1, S, h, dk] -> [1, h, S, dk] *)
    let y =
      reshape_concat t y
        ~pieces:[ const_ints t [ 1 ]; seq; const_ints t [ heads; dk ] ]
    in
    transpose t y [ 0; 2; 1; 3 ]
  in
  let q = split_heads q and k = split_heads k and v = split_heads v in
  let kt = transpose t k [ 0; 1; 3; 2 ] in
  let scores = node1 t Op.MatMul [ q; kt ] in
  let scale =
    Graph.Builder.const t.b ~name:(fresh t "scale")
      (Tensor.scalar_f (1.0 /. sqrt (float_of_int dk)))
  in
  let scores = mul t scores scale in
  let probs = softmax t scores in
  let ctx = node1 t Op.MatMul [ probs; v ] in
  let ctx = transpose t ctx [ 0; 2; 1; 3 ] in
  let ctx =
    reshape_concat t ctx ~pieces:[ const_ints t [ 1 ]; seq; const_ints t [ hidden ] ]
  in
  linear t ctx ~cin:hidden ~cout:hidden

let ffn t x ~hidden ~inner =
  let y = linear t x ~cin:hidden ~cout:inner in
  let y = gelu t y in
  linear t y ~cin:inner ~cout:hidden

let transformer_block t x ~hidden ~heads ~inner =
  let y = layer_norm t x ~dim:hidden in
  let y = mha t y ~hidden ~heads in
  let x = add t x y in
  let y = layer_norm t x ~dim:hidden in
  let y = ffn t y ~hidden ~inner in
  add t x y

let gate_pred t x ~channels ~branches =
  let y = global_pool t x in
  let y = node1 t (Op.Flatten { axis = 1 }) [ y ] in
  let y = linear t y ~cin:channels ~cout:branches in
  node1 t (Op.ArgMax { axis = 1; keepdims = false }) [ y ]

let gated2 t ~pred x f0 f1 =
  match Graph.Builder.node t.b ~name:(fresh t "Switch") (Op.Switch { branches = 2 }) [ x; pred ] with
  | [ o0; o1 ] ->
    let r0 = f0 t o0 in
    let r1 = f1 t o1 in
    node1 t (Op.Combine { branches = 2 }) [ r0; r1; pred ]
  | _ -> assert false

let gated t ~pred x f = gated2 t ~pred x (fun _ o -> o) f
