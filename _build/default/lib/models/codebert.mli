(** CodeBERT-style transformer encoder with a symbolic sequence length [S]:
    token + position embeddings (positions produced by a [Range] over the
    runtime extent, as ONNX exports do) followed by pre-LN transformer
    layers. *)

val vocab : int
(** Vocabulary size of the (random) token embedding table. *)

val max_positions : int

val build : ?layers:int -> ?hidden:int -> ?heads:int -> unit -> Graph.t
