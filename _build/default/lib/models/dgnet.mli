(** DGNet-style dynamic gating network at a fixed 224×224 resolution
    (control-flow dynamism only): every block chooses per input between a
    full residual path and a cheap 1×1 path. *)

val build : ?blocks_per_stage:int -> unit -> Graph.t
