(* BlockDrop: a lightweight policy network looks at the input once and
   emits a keep/drop decision for every residual block of the backbone;
   dropped blocks are skipped through <Switch, Combine>.  H×W is symbolic
   (shape + control-flow dynamism). *)

let n_stages = [ 32; 64; 128; 256 ]
let blocks_per_stage = 4

let n_gated = List.length n_stages * (blocks_per_stage - 1)

(* Policy network: coarse features -> one 2-way logit pair per gated
   block.  Individual predicates are sliced out of the single policy
   tensor. *)
let policy t image =
  let y = Blocks.conv_bn_act t ~stride:4 ~pad:1 image ~cin:3 ~cout:16 ~k:5 in
  let y = Blocks.conv_bn_act t ~stride:2 ~pad:1 y ~cin:16 ~cout:32 ~k:3 in
  let y = Blocks.global_pool t y in
  let y = Blocks.op1 t (Op.Flatten { axis = 1 }) [ y ] in
  Blocks.linear t y ~cin:32 ~cout:(2 * n_gated)

let pred_of_policy t pol k =
  let s = Blocks.const_ints t [ 2 * k ] in
  let e = Blocks.const_ints t [ (2 * k) + 2 ] in
  let axes = Blocks.const_ints t [ 1 ] in
  let steps = Blocks.const_ints t [ 1 ] in
  let pair = Blocks.op1 t Op.Slice [ pol; s; e; axes; steps ] in
  Blocks.op1 t (Op.ArgMax { axis = 1; keepdims = false }) [ pair ]

let build () =
  let t = Blocks.create ~seed:110 in
  let image =
    Blocks.input t ~name:"image"
      (Shape.of_dims [ Dim.of_int 1; Dim.of_int 3; Dim.of_sym "H"; Dim.of_sym "W" ])
  in
  let pol = policy t image in
  let x = Blocks.conv_bn_act t ~stride:2 ~pad:3 image ~cin:3 ~cout:32 ~k:7 in
  let x = Blocks.max_pool t ~stride:2 ~pad:1 ~k:3 x in
  let x = ref x in
  let cin = ref 32 in
  let gate_index = ref 0 in
  List.iter
    (fun cout ->
      x := Blocks.residual_block t ~stride:2 !x ~cin:!cin ~cout;
      cin := cout;
      for _ = 2 to blocks_per_stage do
        let pred = pred_of_policy t pol !gate_index in
        incr gate_index;
        x :=
          Blocks.gated t ~pred !x (fun t y -> Blocks.residual_block t y ~cin:cout ~cout)
      done)
    n_stages;
  let y = Blocks.global_pool t !x in
  let y = Blocks.op1 t (Op.Flatten { axis = 1 }) [ y ] in
  let logits = Blocks.linear t y ~cin:256 ~cout:100 in
  Blocks.finish t ~outputs:[ logits ]
