(* CodeBERT-style transformer encoder over a symbolic sequence length S.
   Token and position embeddings are gathered dynamically (the position
   range is produced by a Range over the runtime sequence extent, the idiom
   ONNX exports use), followed by pre-LN transformer layers. *)

let vocab = 512
let max_positions = 512

let build ?(layers = 10) ?(hidden = 128) ?(heads = 4) () =
  let t = Blocks.create ~seed:101 in
  let ids =
    Blocks.input t ~name:"ids" (Shape.of_dims [ Dim.of_int 1; Dim.of_sym "S" ])
  in
  let tok_table = Blocks.weight t [ vocab; hidden ] in
  let pos_table = Blocks.weight t [ max_positions; hidden ] in
  (* token embeddings: [1, S, hidden] *)
  let x = Blocks.op1 t (Op.Gather { axis = 0 }) [ tok_table; ids ] in
  (* position embeddings: Range(0, S, 1) -> Gather -> [S, hidden], then
     broadcast-add over the batch axis *)
  let seq = Blocks.shape_dim t ids 1 in
  let seq_scalar = Blocks.op1 t (Op.Squeeze [ 0 ]) [ seq ] in
  let positions =
    Blocks.op1 t Op.Range [ Blocks.scalar_i t 0; seq_scalar; Blocks.scalar_i t 1 ]
  in
  let pos = Blocks.op1 t (Op.Gather { axis = 0 }) [ pos_table; positions ] in
  let x = Blocks.add t x pos in
  let x = Blocks.layer_norm t x ~dim:hidden in
  let x = ref x in
  for _ = 1 to layers do
    x := Blocks.transformer_block t !x ~hidden ~heads ~inner:(hidden * 4)
  done;
  let out = Blocks.layer_norm t !x ~dim:hidden in
  Blocks.finish t ~outputs:[ out ]
