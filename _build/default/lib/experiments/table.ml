type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ?(notes = []) rows = { title; headers; rows; notes }

let to_string t =
  let buf = Buffer.create 1024 in
  let all = t.headers :: t.rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < n_cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let pad = widths.(i) - String.length cell in
          if i = 0 then cell ^ String.make pad ' ' else String.make pad ' ' ^ cell)
        row
    in
    Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n")
  in
  let sep =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+\n"
  in
  Buffer.add_string buf ("\n=== " ^ t.title ^ " ===\n");
  Buffer.add_string buf sep;
  render_row t.headers;
  Buffer.add_string buf sep;
  List.iter render_row t.rows;
  Buffer.add_string buf sep;
  List.iter (fun n -> Buffer.add_string buf ("  " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (to_string t)
