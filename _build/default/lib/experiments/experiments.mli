(** Reproductions of every table and figure of the paper's evaluation
    (§2 Table 1, §5 Tables 5–7 and Figures 5–13, plus the §4.4.1 memory-
    plan optimality claim).  Each function runs the corresponding
    experiment on the simulated devices and renders the same rows/series
    the paper reports, with the paper's own numbers quoted in the table
    notes for side-by-side comparison.  The [n] parameter is the number of
    input samples (the paper uses 50). *)

val table1 : ?n:int -> unit -> Table.t
(** MNN re-initialization overhead (SL / ST / Alloc / Infer) on a shape
    change, CPU and GPU. *)

val table5 : ?n:int -> unit -> Table.t
(** Min/Max intermediate-result memory for the 10 models across ORT, MNN,
    TVM-N and SoD² on the mobile CPU, with normalized geo-means. *)

val table6 : ?n:int -> unit -> Table.t
(** Min/Max end-to-end latency, CPU and GPU, with normalized geo-means. *)

val table7 : ?n:int -> unit -> Table.t
(** YOLO-V6 speedups over each baseline at input-size percentiles. *)

val fig5 : ?n:int -> unit -> Table.t
(** Memory reduction from RDP fusion, static execution planning and
    dynamic memory planning (normalized to the No-opt baseline). *)

val fig6 : ?n:int -> unit -> Table.t
(** Latency speedups of the same ablation plus multi-version codegen, CPU
    and GPU. *)

val fig7 : unit -> Table.t
(** Layer count and intermediate-result size: static fusion vs RDP
    fusion, normalized to the unfused graph. *)

val fig8 : unit -> Table.t
(** Sub-graph dynamism breakdown (all-known / mixed-k / nac) by count and
    by latency share, RaNet and BlockDrop. *)

val fig9 : ?n:int -> unit -> Table.t
(** Same-execution-path comparison against MNN (SoD² branch selection
    disabled): speedup and memory reduction. *)

val fig10 : unit -> Table.t
(** YOLO-V6 latency across 15 increasing input sizes, MNN vs SoD². *)

val fig11 : ?n:int -> unit -> Table.t
(** Speedup over TFLite under an equal memory budget (XLA-style
    rematerialization). *)

val fig12 : ?n:int -> unit -> Table.t
(** Overhead against the static DNNFusion baseline on frozen models. *)

val fig13 : ?n:int -> unit -> Table.t
(** Portability: speedups on the Snapdragon 835 profiles, normalized to
    MNN. *)

val memplan_ablation : ?n:int -> unit -> Table.t
(** §4.4.1: peak-first and greedy placement vs exhaustive optimum on
    ConvNet-AIG sub-graph lifetimes. *)

val ordering_ablation : ?n:int -> unit -> Table.t
(** Extra ablation: peak live bytes under each execution-ordering
    strategy, on the zoo and on a wide synthetic graph with genuine
    ordering slack. *)

val tuner_ablation : ?n:int -> unit -> Table.t
(** Extra ablation: GA vs random search vs the untuned default kernel at
    equal evaluation budgets. *)

val llm_decode : ?n:int -> unit -> Table.t
(** §7 extension (not a paper table): autoregressive decoding with a
    growing KV cache — per-step cost of SoD² vs a re-initializing
    engine. *)

val all : ?n:int -> unit -> Table.t list
(** Every experiment, in paper order. *)
