(** Minimal ASCII table rendering for the experiment reproductions. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;  (** caption lines, e.g. the paper's reference numbers *)
}

val make : title:string -> headers:string list -> ?notes:string list ->
  string list list -> t

val print : t -> unit
(** Render to stdout with aligned columns. *)

val to_string : t -> string
