type agg = {
  a_min : float;
  a_max : float;
  a_mean : float;
}

let graph_cache : (string, Graph.t) Hashtbl.t = Hashtbl.create 16

let graph_of (spec : Zoo.spec) =
  match Hashtbl.find_opt graph_cache spec.name with
  | Some g -> g
  | None ->
    let g = spec.build () in
    Hashtbl.add graph_cache spec.name g;
    g

let collect kind profile (spec : Zoo.spec) ~samples ?control () =
  let g = graph_of spec in
  let max_dims = Zoo.input_dims spec g (Zoo.max_env spec) in
  let session = Framework.create kind profile g ~max_dims in
  List.map
    (fun (sm : Workload.sample) ->
      Framework.run ?control session
        ~input_dims:(Zoo.input_dims spec g sm.env)
        ~gate:sm.gate)
    samples

let agg_of values =
  match values with
  | [] -> { a_min = 0.0; a_max = 0.0; a_mean = 0.0 }
  | v :: _ ->
    List.fold_left
      (fun acc x ->
        {
          a_min = Float.min acc.a_min x;
          a_max = Float.max acc.a_max x;
          a_mean = acc.a_mean +. (x /. float_of_int (List.length values));
        })
      { a_min = v; a_max = v; a_mean = 0.0 }
      values

let latency_agg stats =
  agg_of (List.map (fun (s : Framework.stats) -> s.latency_us /. 1000.0) stats)

let memory_agg stats =
  agg_of (List.map (fun (s : Framework.stats) -> float_of_int s.peak_bytes /. 1048576.0) stats)

let geomean = function
  | [] -> 0.0
  | l ->
    exp (List.fold_left (fun acc v -> acc +. log (Float.max 1e-9 v)) 0.0 l
         /. float_of_int (List.length l))

let normalized_geomean ~baseline ~sod2 =
  let ratios =
    List.filter_map
      (fun ((spec : Zoo.spec), b) ->
        match List.find_opt (fun ((s : Zoo.spec), _) -> s.name = spec.name) sod2 with
        | Some (_, s) when s > 0.0 -> Some (b /. s)
        | _ -> None)
      baseline
  in
  if ratios = [] then None else Some (geomean ratios)

let mb v = Printf.sprintf "%.1f" v
let ms v = Printf.sprintf "%.1f" v
let ratio v = Printf.sprintf "%.2fx" v
