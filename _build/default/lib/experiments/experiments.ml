let spec name =
  match Zoo.by_name name with
  | Some s -> s
  | None -> invalid_arg ("Experiments: unknown model " ^ name)

let cpu = Profile.sd888_cpu
let gpu = Profile.sd888_gpu

let fmt_minmax (a : Harness.agg) f = Printf.sprintf "%s..%s" (f a.a_min) (f a.a_max)

(* ------------------------------------------------------------------ *)
(* Table 1: re-initialization overhead on a shape change               *)
(* ------------------------------------------------------------------ *)

let table1 ?n:_ () =
  let models = [ "yolov6"; "conformer"; "codebert" ] in
  let rows =
    List.map
      (fun name ->
        let sp = spec name in
        let g = Harness.graph_of sp in
        let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
        let cell profile =
          let session = Framework.create Framework.Mnn profile g ~max_dims in
          (* first shape initializes; the second, different shape triggers
             the re-initialization we measure *)
          let s0 = Workload.sample_at sp ~percentile:0.3 ~idx:0 in
          let s1 = Workload.sample_at sp ~percentile:0.8 ~idx:1 in
          ignore
            (Framework.run session ~input_dims:(Zoo.input_dims sp g s0.env) ~gate:s0.gate);
          let st =
            Framework.run session ~input_dims:(Zoo.input_dims sp g s1.env) ~gate:s1.gate
          in
          [
            Printf.sprintf "%.1f" (st.bd.shape_pass_us /. 1000.0);
            Printf.sprintf "%.0f" (st.bd.tuning_us /. 1000.0);
            Printf.sprintf "%.0f" (st.bd.alloc_us /. 1000.0);
            Printf.sprintf "%.0f" (st.bd.infer_us /. 1000.0);
          ]
        in
        (sp.paper_name :: cell cpu) @ cell gpu)
      models
  in
  Table.make ~title:"Table 1: MNN re-initialization overhead on input-shape change (ms)"
    ~headers:
      [ "Model"; "CPU SL"; "CPU ST"; "CPU Alloc"; "CPU Infer";
        "GPU SL"; "GPU ST"; "GPU Alloc"; "GPU Infer" ]
    ~notes:
      [
        "Paper (Samsung Galaxy S21, MNN): YOLOV6 CPU 69/1155/22/476, GPU 0.8/1678/30605/102;";
        "Conformer CPU 38/127/78/926, GPU 3/1021/73170/1193; CodeBERT CPU 23/253/28/370, GPU 1/856/4568/498.";
        "Re-initialization (SL+ST+Alloc) dwarfs inference, most extremely for GPU allocation.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 5: memory; Table 6: latency                                   *)
(* ------------------------------------------------------------------ *)

let overall_frameworks = [ Framework.Ort; Framework.Mnn; Framework.Tvm_nimble ]

let table5 ?(n = 50) () =
  let per_model =
    List.map
      (fun (sp : Zoo.spec) ->
        let samples = Workload.samples ~n sp in
        let cells =
          List.map
            (fun fw ->
              if Framework.supports fw ~model:sp.name cpu.Profile.target then
                Some (Harness.memory_agg (Harness.collect fw cpu sp ~samples ()))
              else None)
            (overall_frameworks @ [ Framework.Sod2_fw ])
        in
        sp, cells)
      Zoo.all
  in
  let rows =
    List.map
      (fun ((sp : Zoo.spec), cells) ->
        sp.paper_name
        :: List.concat_map
             (function
               | Some agg ->
                 [ Harness.mb agg.Harness.a_min; Harness.mb agg.Harness.a_max ]
               | None -> [ "-"; "-" ])
             cells)
      per_model
  in
  (* normalized geo-mean of per-model average memory *)
  let mean_of idx =
    List.filter_map
      (fun (sp, cells) ->
        match List.nth cells idx with
        | Some agg -> Some (sp, agg.Harness.a_mean)
        | None -> None)
      per_model
  in
  let sod2_means = mean_of 3 in
  let geo idx =
    match Harness.normalized_geomean ~baseline:(mean_of idx) ~sod2:sod2_means with
    | Some g -> Harness.ratio g
    | None -> "-"
  in
  let rows =
    rows
    @ [ [ "Geo-mean (norm. by SoD2)"; geo 0; ""; geo 1; ""; geo 2; ""; "1.00x"; "" ] ]
  in
  Table.make
    ~title:
      (Printf.sprintf
         "Table 5: intermediate-result memory, mobile CPU, %d samples/model (MB)" n)
    ~headers:
      [ "Model"; "ORT Min"; "ORT Max"; "MNN Min"; "MNN Max"; "TVM-N Min"; "TVM-N Max";
        "SoD2 Min"; "SoD2 Max" ]
    ~notes:
      [
        "Paper geo-means normalized by SoD2: ORT 3.64x, MNN 1.37x, TVM-N 8.62x.";
        "Absolute MB are smaller than the paper's: the zoo models are width/depth-scaled;";
        "the comparison of interest is the per-framework ratio.";
      ]
    rows

let table6 ?(n = 50) () =
  let collect_lat profile (sp : Zoo.spec) fw samples =
    if Framework.supports fw ~model:sp.name profile.Profile.target then
      Some (Harness.latency_agg (Harness.collect fw profile sp ~samples ()))
    else None
  in
  let fws = overall_frameworks @ [ Framework.Sod2_fw ] in
  let per_model =
    List.map
      (fun (sp : Zoo.spec) ->
        let samples = Workload.samples ~n sp in
        let cpu_cells = List.map (fun fw -> collect_lat cpu sp fw samples) fws in
        let gpu_cells = List.map (fun fw -> collect_lat gpu sp fw samples) fws in
        sp, cpu_cells, gpu_cells)
      Zoo.all
  in
  let fmt = function
    | Some agg -> fmt_minmax agg (Printf.sprintf "%.0f")
    | None -> "-"
  in
  let rows =
    List.map
      (fun ((sp : Zoo.spec), cpu_cells, gpu_cells) ->
        (sp.paper_name :: List.map fmt cpu_cells) @ List.map fmt gpu_cells)
      per_model
  in
  let geo cells_of idx =
    let mean_of i =
      List.filter_map
        (fun (sp, cpu_cells, gpu_cells) ->
          match List.nth (cells_of (cpu_cells, gpu_cells)) i with
          | Some agg -> Some (sp, agg.Harness.a_mean)
          | None -> None)
        per_model
    in
    match Harness.normalized_geomean ~baseline:(mean_of idx) ~sod2:(mean_of 3) with
    | Some g -> Harness.ratio g
    | None -> "-"
  in
  let geo_cpu = geo fst and geo_gpu = geo snd in
  let rows =
    rows
    @ [
        [ "Geo-mean (norm. by SoD2)"; geo_cpu 0; geo_cpu 1; geo_cpu 2; "1.00x";
          geo_gpu 0; geo_gpu 1; geo_gpu 2; "1.00x" ];
      ]
  in
  Table.make
    ~title:
      (Printf.sprintf "Table 6: end-to-end latency Min..Max, %d samples/model (ms)" n)
    ~headers:
      [ "Model"; "ORT CPU"; "MNN CPU"; "TVM-N CPU"; "SoD2 CPU"; "ORT GPU"; "MNN GPU";
        "TVM-N GPU"; "SoD2 GPU" ]
    ~notes:
      [
        "Paper geo-means normalized by SoD2: CPU — ORT 2.5x, MNN 1.7x, TVM-N 2.7x;";
        "GPU — ORT 3.9x, MNN 2.3x (TVM-N unsupported on mobile GPU).";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 7: input-size percentiles on YOLO-V6                          *)
(* ------------------------------------------------------------------ *)

let table7 ?n:_ () =
  let sp = spec "yolov6" in
  let g = Harness.graph_of sp in
  let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
  let percentiles = [ 0.01, "1th"; 0.25, "25th"; 0.5, "50th"; 0.75, "75th"; 1.0, "100th" ] in
  let lat_series fw =
    let session = Framework.create fw cpu g ~max_dims in
    List.map
      (fun (p, _) ->
        let sm = Workload.sample_at sp ~percentile:p ~idx:0 in
        (Framework.run session ~input_dims:(Zoo.input_dims sp g sm.env) ~gate:sm.gate)
          .Framework.latency_us)
      percentiles
  in
  let sod2 = lat_series Framework.Sod2_fw in
  let rows =
    List.map
      (fun fw ->
        Framework.kind_name fw
        :: List.map2 (fun l s -> Harness.ratio (l /. s)) (lat_series fw) sod2)
      overall_frameworks
  in
  Table.make ~title:"Table 7: SoD2 speedup over baselines at input-size percentiles (YOLO-V6, CPU)"
    ~headers:("Baseline" :: List.map snd percentiles)
    ~notes:
      [
        "Paper: ORT 1.43/1.66/1.95/2.33/2.52; MNN 1.41/1.44/1.50/1.58/1.65;";
        "TVM-N 2.13/2.52/3.03/3.67/3.90 — speedups grow with input size.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figs 5/6: optimization breakdown                                    *)
(* ------------------------------------------------------------------ *)

let ablation_models = [ "stable-diffusion-encoder"; "codebert"; "ranet"; "blockdrop" ]

let ablation_configs : (string * Pipeline.opt_flags) list =
  [
    "No opt.", Pipeline.no_opts;
    "+Fusion", { Pipeline.no_opts with fusion = true };
    "+SEP", { Pipeline.no_opts with fusion = true; sep = true };
    "+DMP", { Pipeline.no_opts with fusion = true; sep = true; dmp = true };
    "+MVC", Pipeline.all_opts;
  ]

let ablation_stats profile (sp : Zoo.spec) flags samples =
  let g = Harness.graph_of sp in
  let session = Framework.create_sod2_with_flags flags profile g in
  List.map
    (fun (sm : Workload.sample) ->
      Framework.run session ~input_dims:(Zoo.input_dims sp g sm.env) ~gate:sm.gate)
    samples

let fig5 ?(n = 20) () =
  let rows =
    List.map
      (fun name ->
        let sp = spec name in
        let samples = Workload.samples ~n sp in
        let mems =
          List.map
            (fun (_, flags) ->
              (Harness.memory_agg (ablation_stats cpu sp flags samples)).Harness.a_mean)
            (List.filteri (fun i _ -> i < 4) ablation_configs)
        in
        match mems with
        | base :: rest ->
          sp.paper_name :: "1.00"
          :: List.map (fun m -> Printf.sprintf "%.2f" (m /. base)) rest
        | [] -> [ sp.paper_name ])
      ablation_models
  in
  Table.make ~title:"Fig 5: memory vs RDP-enabled optimizations, CPU (normalized to No opt.)"
    ~headers:[ "Model"; "No opt."; "+Fusion"; "+SEP"; "+DMP" ]
    ~notes:
      [
        "Paper: fusion saves 18-30%, execution planning an extra 22-37%, memory planning";
        "another 3-7%; multi-version codegen does not affect memory.";
      ]
    rows

let fig6 ?(n = 20) () =
  let row profile name =
    let sp = spec name in
    let samples = Workload.samples ~n sp in
    let lats =
      List.map
        (fun (_, flags) ->
          (Harness.latency_agg (ablation_stats profile sp flags samples)).Harness.a_mean)
        ablation_configs
    in
    match lats with
    | base :: rest ->
      sp.paper_name :: "1.00"
      :: List.map (fun l -> Printf.sprintf "%.2f" (base /. l)) rest
    | [] -> [ sp.paper_name ]
  in
  let rows =
    List.map (row cpu) ablation_models
    @ List.map (fun m -> row gpu m |> List.mapi (fun i c -> if i = 0 then c ^ " (GPU)" else c))
        ablation_models
  in
  Table.make ~title:"Fig 6: speedup vs RDP-enabled optimizations (over No opt.)"
    ~headers:[ "Model"; "No opt."; "+Fusion"; "+SEP"; "+DMP"; "+MVC" ]
    ~notes:
      [
        "Paper CPU: fusion 1.3-1.9x, +SEP 1.1-1.3x, +DMP 1.04-1.1x, +MVC 1.3-1.6x;";
        "GPU gains are larger (fusion up to 2.3x) since GPUs are more memory sensitive.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig 7: fusion ablation                                              *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  let rows =
    List.map
      (fun name ->
        let sp = spec name in
        let g = Harness.graph_of sp in
        let rdp = Rdp.analyze g in
        let env = Zoo.percentile_env sp 0.5 in
        let env =
          (* fixed-shape models have no shape variables *)
          if Env.to_list env = [] then Env.empty else env
        in
        let original = Fusion.identity_plan g in
        let sfusion = Fusion.plan ~mode:Fusion.Static_only g rdp in
        let rfusion = Fusion.plan ~mode:Fusion.Rdp_based g rdp in
        let lc plan = float_of_int (Fusion.layer_count plan) in
        let ir plan = float_of_int (Fusion.intermediate_bytes g plan env rdp) in
        let base_lc = lc original and base_ir = ir original in
        [
          sp.paper_name;
          "1.00"; Printf.sprintf "%.2f" (lc sfusion /. base_lc);
          Printf.sprintf "%.2f" (lc rfusion /. base_lc);
          "1.00"; Printf.sprintf "%.2f" (ir sfusion /. base_ir);
          Printf.sprintf "%.2f" (ir rfusion /. base_ir);
        ])
      ablation_models
  in
  Table.make ~title:"Fig 7: static fusion vs RDP fusion (normalized to no fusion)"
    ~headers:
      [ "Model"; "LC orig"; "LC SFusion"; "LC RDP"; "IR orig"; "IR SFusion"; "IR RDP" ]
    ~notes:
      [
        "Paper: SFusion cuts layer count 26-61%; RDP fusion removes another 16-46% of";
        "layers and 13-40% of intermediate-result bytes on top of SFusion.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig 8: sub-graph dynamism breakdown                                 *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  let rows =
    List.concat_map
      (fun name ->
        let sp = spec name in
        let g = Harness.graph_of sp in
        let c = Pipeline.compile cpu g in
        let counts = Exec_plan.subgraph_kind_counts c.Pipeline.exec in
        let total = List.fold_left (fun acc (_, v) -> acc + v) 0 counts in
        let pct v = Printf.sprintf "%.0f%%" (100.0 *. float_of_int v /. float_of_int (max 1 total)) in
        (* latency share per sub-graph kind from one executed trace *)
        let sm = Workload.sample_at sp ~percentile:0.5 ~idx:0 in
        let trace =
          Executor.run_dry ~gate:(Workload.fixed_gates 1) c
            ~input_dims:(Zoo.input_dims sp (Harness.graph_of sp) sm.Workload.env)
        in
        let kind_of_group = Hashtbl.create 64 in
        Array.iter
          (fun (sg : Exec_plan.subgraph) ->
            List.iter
              (fun gid ->
                let key =
                  match sg.Exec_plan.kind with
                  | Exec_plan.All_known -> "all-known"
                  | Exec_plan.Mixed v when v <= 1 -> "mixed-1"
                  | Exec_plan.Mixed v when v <= 4 -> "mixed-2-4"
                  | Exec_plan.Mixed _ -> "mixed-5-8"
                  | Exec_plan.Has_nac -> "nac"
                in
                Hashtbl.replace kind_of_group gid key)
              sg.Exec_plan.sg_groups)
          c.Pipeline.exec.Exec_plan.subgraphs;
        let time_per_kind = Hashtbl.create 8 in
        let total_time = ref 0.0 in
        List.iter
          (fun (ge : Executor.group_exec) ->
            let t =
              Cost_model.group_time_us cpu ge.Executor.ops
                ~external_bytes:ge.Executor.external_bytes
            in
            let key =
              Option.value ~default:"nac" (Hashtbl.find_opt kind_of_group ge.Executor.gid)
            in
            total_time := !total_time +. t;
            Hashtbl.replace time_per_kind key
              (t +. Option.value ~default:0.0 (Hashtbl.find_opt time_per_kind key)))
          trace.Executor.steps;
        let tpct key =
          let t = Option.value ~default:0.0 (Hashtbl.find_opt time_per_kind key) in
          Printf.sprintf "%.0f%%" (100.0 *. t /. Float.max 1e-9 !total_time)
        in
        [
          (sp.paper_name ^ " (count)")
          :: List.map (fun (_, v) -> pct v) counts;
          (sp.paper_name ^ " (latency)")
          :: List.map (fun (k, _) -> tpct k) counts;
        ])
      [ "ranet"; "blockdrop" ]
  in
  Table.make ~title:"Fig 8: sub-graph breakdown by dynamism degree"
    ~headers:[ "Model"; "all-known"; "mixed-1"; "mixed-2-4"; "mixed-5-8"; "nac" ]
    ~notes:
      [
        "Paper: over 90% of sub-graphs are all-known or mixed-constant, i.e. their";
        "execution and memory plans are statically optimizable.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig 9: same execution path vs MNN                                   *)
(* ------------------------------------------------------------------ *)

let fig9 ?(n = 20) () =
  let models = [ "skipnet"; "convnet-aig"; "ranet"; "blockdrop" ] in
  let rows =
    List.map
      (fun name ->
        let sp = spec name in
        (* identical, fixed execution path for both frameworks: every gate
           takes the expensive branch and SoD2's branch selection is
           disabled (execute-all-and-strip on both sides) *)
        let samples =
          List.map
            (fun (sm : Workload.sample) -> { sm with gate = Workload.fixed_gates 1 })
            (Workload.samples ~n sp)
        in
        let mnn = Harness.collect Framework.Mnn cpu sp ~samples () in
        let sod2 =
          Harness.collect Framework.Sod2_fw cpu sp ~samples
            ~control:Executor.All_paths ()
        in
        let lat l = (Harness.latency_agg l).Harness.a_mean in
        let mem l = (Harness.memory_agg l).Harness.a_mean in
        [
          sp.paper_name;
          Harness.ratio (lat mnn /. lat sod2);
          Harness.ratio (mem mnn /. mem sod2);
        ])
      models
  in
  Table.make
    ~title:"Fig 9: same-execution-path comparison vs MNN, CPU (control-flow support disabled)"
    ~headers:[ "Model"; "Speedup over MNN"; "Memory reduction vs MNN" ]
    ~notes:
      [
        "Paper: 1.5-2.0x speedup and 1.2-1.5x memory reduction even without SoD2's";
        "dynamic branch selection.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig 10: latency across input sizes                                  *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  let sp = spec "yolov6" in
  let g = Harness.graph_of sp in
  let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
  let sizes = Workload.ascending_sizes ~n:15 sp in
  let series profile fw =
    let session = Framework.create fw profile g ~max_dims in
    List.map
      (fun (sm : Workload.sample) ->
        (Framework.run session ~input_dims:(Zoo.input_dims sp g sm.env) ~gate:sm.gate)
          .Framework.latency_us /. 1000.0)
      sizes
  in
  let mnn_cpu = series cpu Framework.Mnn in
  let sod2_cpu = series cpu Framework.Sod2_fw in
  let mnn_gpu = series gpu Framework.Mnn in
  let sod2_gpu = series gpu Framework.Sod2_fw in
  let rows =
    List.mapi
      (fun i (sm : Workload.sample) ->
        let dims =
          String.concat " "
            (List.map (fun (s, v) -> Printf.sprintf "%s=%d" s v) (Env.to_list sm.env))
        in
        [
          dims;
          Printf.sprintf "%.0f" (List.nth mnn_cpu i);
          Printf.sprintf "%.0f" (List.nth sod2_cpu i);
          Printf.sprintf "%.0f" (List.nth mnn_gpu i);
          Printf.sprintf "%.0f" (List.nth sod2_gpu i);
        ])
      sizes
  in
  Table.make ~title:"Fig 10: YOLO-V6 latency across 15 input sizes (ms)"
    ~headers:[ "Input"; "MNN CPU"; "SoD2 CPU"; "MNN GPU"; "SoD2 GPU" ]
    ~notes:
      [ "Paper: SoD2 is consistently faster and grows smoothly with input size." ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig 11: fixed memory budget vs TFLite                               *)
(* ------------------------------------------------------------------ *)

let fig11 ?(n = 20) () =
  let models = [ "skipnet"; "ranet" ] in
  let row profile name =
    let sp = spec name in
    let g = Harness.graph_of sp in
    let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
    let samples = Workload.samples ~n sp in
    let sod2 = Framework.create Framework.Sod2_fw profile g ~max_dims in
    let tfl = Framework.create Framework.Tflite profile g ~max_dims in
    let ratios =
      List.map
        (fun (sm : Workload.sample) ->
          let input_dims = Zoo.input_dims sp g sm.env in
          let s = Framework.run sod2 ~input_dims ~gate:sm.gate in
          let t =
            Framework.run_with_budget tfl ~budget_bytes:s.Framework.peak_bytes
              ~input_dims ~gate:sm.gate
          in
          t.Framework.latency_us /. s.Framework.latency_us)
        samples
    in
    Harness.ratio (Harness.geomean ratios)
  in
  let rows =
    List.map (fun m -> [ (spec m).Zoo.paper_name; row cpu m; row gpu m ]) models
  in
  Table.make
    ~title:"Fig 11: speedup over TFLite under the same memory budget (XLA rematerialization)"
    ~headers:[ "Model"; "CPU"; "GPU" ]
    ~notes:
      [
        "Paper: the margin over TFLite grows under an equal budget, more on GPU where";
        "rematerializing intermediates is costlier.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig 12: overhead vs static DNNFusion on frozen models               *)
(* ------------------------------------------------------------------ *)

let fig12 ?(n = 10) () =
  let models = [ "skipnet"; "ranet" ] in
  let row profile name =
    let sp = spec name in
    let g = Harness.graph_of sp in
    let max_dims = Zoo.input_dims sp g (Zoo.max_env sp) in
    (* frozen: one fixed shape, one fixed path *)
    let sm = Workload.sample_at sp ~percentile:0.5 ~idx:0 in
    let input_dims = Zoo.input_dims sp g sm.env in
    let gate = Workload.fixed_gates 1 in
    let avg fw =
      let session = Framework.create fw profile g ~max_dims in
      let lats =
        List.init n (fun _ ->
            (Framework.run session ~input_dims ~gate).Framework.latency_us)
      in
      List.fold_left ( +. ) 0.0 lats /. float_of_int n
    in
    let d = avg Framework.Dnnfusion and s = avg Framework.Sod2_fw in
    Printf.sprintf "%.1f%%" (100.0 *. ((s /. d) -. 1.0))
  in
  let rows =
    List.map (fun m -> [ (spec m).Zoo.paper_name; row cpu m; row gpu m ]) models
  in
  Table.make ~title:"Fig 12: SoD2 overhead vs static DNNFusion on frozen shapes and paths"
    ~headers:[ "Model"; "CPU overhead"; "GPU overhead" ]
    ~notes:[ "Paper: 3% (SkipNet) and 7% (RaNet) average slowdown vs fully-static DNNFusion." ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig 13: portability (Snapdragon 835)                                *)
(* ------------------------------------------------------------------ *)

let fig13 ?(n = 20) () =
  let models =
    [ "stable-diffusion-encoder"; "yolov6"; "skipnet"; "convnet-aig"; "blockdrop" ]
  in
  let fws = [ Framework.Ort; Framework.Tvm_nimble; Framework.Sod2_fw ] in
  let row profile name =
    let sp = spec name in
    let samples = Workload.samples ~n sp in
    let mnn =
      if Framework.supports Framework.Mnn ~model:sp.name profile.Profile.target then
        Some (Harness.latency_agg (Harness.collect Framework.Mnn profile sp ~samples ())).Harness.a_mean
      else None
    in
    let cells =
      List.map
        (fun fw ->
          if Framework.supports fw ~model:sp.name profile.Profile.target then
            let l =
              (Harness.latency_agg (Harness.collect fw profile sp ~samples ()))
                .Harness.a_mean
            in
            match mnn with
            | Some m -> Harness.ratio (m /. l)
            | None -> "-"
          else "-")
        fws
    in
    sp.paper_name :: "1.00x" :: cells
  in
  let rows =
    List.map (row Profile.sd835_cpu) models
    @ List.map
        (fun m ->
          row Profile.sd835_gpu m
          |> List.mapi (fun i c -> if i = 0 then c ^ " (GPU)" else c))
        models
  in
  Table.make
    ~title:"Fig 13: portability on Snapdragon 835 (speedup normalized to MNN)"
    ~headers:[ "Model"; "MNN"; "ORT"; "TVM-N"; "SoD2" ]
    ~notes:
      [
        "Paper: SoD2's advantage grows on the weaker SoC because its memory savings";
        "matter more under tighter cache and bandwidth.";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* §4.4.1: memory-plan optimality ablation                             *)
(* ------------------------------------------------------------------ *)

let memplan_ablation ?n:_ () =
  (* Arena size of each placement strategy against the live-bytes lower
     bound (which any placement must reach), over the unfused per-inference
     lifetimes — the packing problem the memory planner actually faces.
     Transformer lifetimes (heterogeneous tensor sizes) exhibit the
     fragmentation the heuristics differ on. *)
  let row name =
    let sp = spec name in
    let g = Harness.graph_of sp in
    let base = Pipeline.compile ~flags:Pipeline.no_opts cpu g in
    let fusion_plan = Fusion.identity_plan g in
    let env = Pipeline.plan_env base 64 in
    let exec =
      Exec_plan.plan ~strategy:Exec_plan.Topological g base.Pipeline.rdp fusion_plan ~env
    in
    let c = { base with Pipeline.fusion_plan; exec } in
    let sm = Workload.sample_at sp ~percentile:0.7 ~idx:0 in
    let trace =
      Executor.run_dry ~gate:sm.Workload.gate c
        ~input_dims:(Zoo.input_dims sp g sm.Workload.env)
    in
    let lts =
      List.map
        (fun (e : Executor.tensor_event) ->
          e.Executor.te_bytes, e.Executor.te_alloc, e.Executor.te_free)
        trace.Executor.events
    in
    let lower =
      let last = List.fold_left (fun a (_, _, l) -> max a l) 0 lts in
      let pk = ref 0 in
      for st = 0 to last do
        let v =
          List.fold_left (fun a (b, f, l) -> if f <= st && st <= l then a + b else a) 0 lts
        in
        if v > !pk then pk := v
      done;
      max 1 !pk
    in
    let ratio strat =
      Printf.sprintf "%.2fx"
        (float_of_int (Mem_plan.arena_for strat ~lifetimes:lts) /. float_of_int lower)
    in
    [ (spec name).Zoo.paper_name; ratio Mem_plan.Peak_first; ratio Mem_plan.Greedy_first_fit ]
  in
  Table.make
    ~title:"Memory-plan quality vs live-bytes lower bound (unfused lifetimes)"
    ~headers:[ "Model"; "SoD2 peak-first"; "Greedy first-fit (MNN)" ]
    ~notes:
      [
        "Paper (\xc2\xa74.4.1, ConvNet-AIG sub-graphs): peak-first reaches 1.05x of the";
        "exhaustive optimum where greedy needs 1.16x.  Conv lifetimes at our reduced";
        "widths pack trivially; the transformer rows show where the heuristics part.";
      ]
    [ row "convnet-aig"; row "codebert"; row "conformer" ]

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper: ordering strategies and tuner search    *)
(* ------------------------------------------------------------------ *)

let ordering_ablation ?n:_ () =
  (* Peak live bytes under each execution-ordering strategy, on the zoo
     models plus a wide multi-branch graph where ordering has real slack
     (at the zoo's reduced widths the peak is pinned by single-operator
     cliques, so the interesting row is the synthetic one). *)
  let wide () =
    let b = Graph.Builder.create () in
    let rng = Rng.create 13 in
    let x =
      Graph.Builder.input b ~name:"x"
        (Shape.of_dims [ Dim.of_int 1; Dim.of_int 4; Dim.of_sym "H"; Dim.of_sym "H" ])
    in
    let tower cout =
      let conv cin cout y =
        Graph.Builder.node1 b
          (Op.Conv { stride = (1, 1); pads = (0, 0, 0, 0); dilation = (1, 1); groups = 1 })
          [ y;
            Graph.Builder.const b ~name:(Printf.sprintf "w%d_%d" cin cout)
              (Tensor.rand_normal rng [ cout; cin; 1; 1 ]) ]
      in
      conv cout 4 (conv 4 cout x)
    in
    let towers = List.map tower [ 96; 64; 48; 32; 16; 8 ] in
    let sum =
      List.fold_left
        (fun acc t -> Graph.Builder.node1 b (Op.Binary Op.Add) [ acc; t ])
        (List.hd towers) (List.tl towers)
    in
    Graph.Builder.set_outputs b [ sum ];
    Graph.Builder.finish b
  in
  let row name g env =
    let rdp = Rdp.analyze g in
    let fp = Fusion.plan g rdp in
    let peak strategy =
      let ep = Exec_plan.plan ~strategy g rdp fp ~env in
      Exec_plan.simulate_peak_bytes g rdp fp ~env ~order:ep.Exec_plan.order
    in
    let bfs = peak Exec_plan.Topological in
    let fmt v = Printf.sprintf "%.2f" (float_of_int v /. float_of_int (max 1 bfs)) in
    [ name; "1.00"; fmt (peak Exec_plan.Greedy_memory); fmt (peak Exec_plan.Optimal_small) ]
  in
  let model name =
    let sp = spec name in
    let g = Harness.graph_of sp in
    let env = List.fold_left (fun e (s, _) -> Env.bind s 128 e) Env.empty sp.Zoo.dim_choices in
    row sp.Zoo.paper_name g env
  in
  Table.make
    ~title:
      "Ablation: execution-ordering strategy vs peak live bytes (normalized to breadth-first)"
    ~headers:[ "Graph"; "Breadth-first"; "Greedy"; "SoD2 (DP/lazy)" ]
    ~notes:
      [
        "Extra ablation (not a paper figure).  The SoD2 planner never loses to the";
        "naive order and wins where branches give it slack.";
      ]
    [ row "wide multi-branch" (wide ()) (Env.of_list [ "H", 32 ]);
      model "codebert"; model "yolov6"; model "ranet" ]

let tuner_ablation ?n:_ () =
  (* GA vs random search vs the untuned default, equal evaluation budget. *)
  let cases = [ "fat 512x512x256", (512, 512, 256); "regular 96x96x96", (96, 96, 96);
                "skinny 4x512x256", (4, 512, 256) ] in
  let rows =
    List.map
      (fun (label, (m, n, k)) ->
        let _, ga = Autotune.tune cpu (Rng.create 3) ~m ~n ~k in
        let _, rnd = Autotune.random_search cpu (Rng.create 3) ~m ~n ~k in
        let base = Autotune.efficiency cpu Autotune.default_config ~m ~n ~k in
        [ label; Printf.sprintf "%.2f" base; Printf.sprintf "%.2f" rnd;
          Printf.sprintf "%.2f" ga ])
      cases
  in
  Table.make ~title:"Ablation: kernel-tuner search strategy (predicted efficiency)"
    ~headers:[ "Problem"; "Untuned"; "Random search"; "Genetic algorithm" ]
    ~notes:[ "Extra ablation (not a paper figure); equal evaluation budgets." ]
    rows

(* ------------------------------------------------------------------ *)
(* §7 extension: autoregressive LLM decoding                           *)
(* ------------------------------------------------------------------ *)

let llm_decode ?n:_ () =
  (* One compiled artifact serves every decode step even though the cache
     length P changes on each step; a re-initializing engine recompiles
     per step.  Chunked prefill (S=16) followed by token-by-token decode. *)
  let g = Gpt_decoder.build () in
  let max_dims = Gpt_decoder.input_dims g ~past:512 ~seq:16 in
  let sod2 = Framework.create Framework.Sod2_fw cpu g ~max_dims in
  let mnn = Framework.create Framework.Mnn cpu g ~max_dims in
  let gate = Workload.fixed_gates 0 in
  let steps = [ 16, 16; 32, 1; 64, 1; 128, 1; 256, 1; 512, 1 ] in
  let rows =
    List.map
      (fun (past, seq) ->
        let input_dims = Gpt_decoder.input_dims g ~past ~seq in
        let m = Framework.run mnn ~input_dims ~gate in
        let d = Framework.run sod2 ~input_dims ~gate in
        [
          Printf.sprintf "P=%d S=%d" past seq;
          Printf.sprintf "%.1f + %.1f" (m.Framework.reinit_us /. 1000.0)
            (m.Framework.latency_us /. 1000.0);
          Printf.sprintf "%.1f" (d.Framework.latency_us /. 1000.0);
          Harness.ratio
            ((m.Framework.reinit_us +. m.Framework.latency_us) /. d.Framework.latency_us);
        ])
      steps
  in
  Table.make
    ~title:"LLM decoding extension (\xc2\xa77): per-step cost with a growing KV cache"
    ~headers:[ "Step"; "MNN reinit + infer (ms)"; "SoD2 (ms)"; "Step speedup" ]
    ~notes:
      [
        "Not in the paper's evaluation: \xc2\xa77 names LLMs as future work.  The cache";
        "length P changes every decoded token, so a re-initializing engine recompiles";
        "per step while SoD2's RDP resolves all extents (P, S, P+S) symbolically once.";
      ]
    rows

let all ?(n = 50) () =
  [
    table1 ();
    table5 ~n ();
    table6 ~n ();
    table7 ();
    fig5 ~n:(min n 20) ();
    fig6 ~n:(min n 20) ();
    fig7 ();
    fig8 ();
    fig9 ~n:(min n 20) ();
    fig10 ();
    fig11 ~n:(min n 20) ();
    fig12 ();
    fig13 ~n:(min n 20) ();
    memplan_ablation ();
    ordering_ablation ();
    tuner_ablation ();
    llm_decode ();
  ]
