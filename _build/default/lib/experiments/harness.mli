(** Shared machinery for the experiment reproductions: cached model
    graphs, per-framework stat collection over workload samples, and the
    aggregation conventions of §5 (min/max over samples, geometric mean of
    per-model averages normalized by SoD²). *)

type agg = {
  a_min : float;
  a_max : float;
  a_mean : float;
}

val graph_of : Zoo.spec -> Graph.t
(** Build (and memoize) the model's graph. *)

val collect :
  Framework.kind -> Profile.t -> Zoo.spec -> samples:Workload.sample list ->
  ?control:Executor.control -> unit -> Framework.stats list
(** One framework session over all samples, in order. *)

val latency_agg : Framework.stats list -> agg
(** Milliseconds. *)

val memory_agg : Framework.stats list -> agg
(** Megabytes. *)

val geomean : float list -> float

val normalized_geomean :
  baseline:(Zoo.spec * float) list -> sod2:(Zoo.spec * float) list -> float option
(** Geometric mean over the models both lists cover of baseline/SoD² —
    the normalization used in the last rows of Tables 5 and 6. *)

val mb : float -> string
val ms : float -> string
val ratio : float -> string
