lib/experiments/harness.ml: Float Framework Graph Hashtbl List Printf Workload Zoo
