lib/experiments/table.ml: Array Buffer List String
