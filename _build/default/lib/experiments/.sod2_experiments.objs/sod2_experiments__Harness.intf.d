lib/experiments/harness.mli: Executor Framework Graph Profile Workload Zoo
