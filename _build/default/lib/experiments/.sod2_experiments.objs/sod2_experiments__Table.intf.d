lib/experiments/table.mli:
