lib/experiments/experiments.mli: Table
