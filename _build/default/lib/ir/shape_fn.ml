type io = {
  in_shapes : Shape.t array;
  in_values : Value_info.t array;
}

let shape_in io i =
  if i >= 0 && i < Array.length io.in_shapes then io.in_shapes.(i) else Shape.Undef

let value_in io i =
  if i >= 0 && i < Array.length io.in_values then io.in_values.(i) else Value_info.undef

let no_value : Value_info.t = Lattice.Nac

let out1 s v = [| s |], [| v |]
let undef1 = out1 Shape.Undef Value_info.undef
let nac1 = out1 Shape.Nac no_value

(* Worst of the input values when a value transfer cannot fire: stay Undef
   while the inputs may still improve, go Nac once any of them is Nac. *)
let pending_value values =
  if Array.exists (fun v -> v = (Lattice.Nac : Value_info.t)) values then no_value
  else Value_info.undef

(* Conv/pool spatial extent: floor((in + pads - ((k-1)*d + 1)) / stride) + 1,
   as a symbolic expression when [in] is symbolic. *)
let spatial_out_dim in_dim ~kernel ~stride ~pad_begin ~pad_end ~dilation =
  match Dim.as_expr in_dim with
  | None -> in_dim
  | Some e ->
    let c = pad_begin + pad_end - (((kernel - 1) * dilation) + 1) in
    let q = Expr.div (Expr.add e (Expr.const c)) (Expr.const stride) in
    Dim.of_expr (Expr.add q Expr.one)

let normalize_axis r a = if a < 0 then a + r else a

(* ------------------------------------------------------------------ *)
(* Value transfer helpers                                              *)
(* ------------------------------------------------------------------ *)

let binary_value_fn : Op.binary -> (Expr.t -> Expr.t -> Expr.t) option = function
  | Op.Add -> Some Expr.add
  | Op.Sub -> Some Expr.sub
  | Op.Mul -> Some Expr.mul
  | Op.Div -> Some Expr.div
  | Op.Mod2 -> Some Expr.modulo
  | Op.Max2 -> Some Expr.max_
  | Op.Min2 -> Some Expr.min_
  | Op.Equal | Op.Less | Op.Greater | Op.And | Op.Or | Op.Pow -> None

let binary_value op va vb =
  match binary_value_fn op, (va : Value_info.t), (vb : Value_info.t) with
  | Some f, Lattice.Known a, Lattice.Known b ->
    let la = Array.length a and lb = Array.length b in
    if la = lb then Lattice.Known (Array.map2 f a b)
    else if la = 1 then Lattice.Known (Array.map (fun e -> f a.(0) e) b)
    else if lb = 1 then Lattice.Known (Array.map (fun e -> f e b.(0)) a)
    else no_value
  | _, (Lattice.Undef | Lattice.Known _), (Lattice.Undef | Lattice.Known _) ->
    pending_value [| va; vb |]
  | _ -> no_value

(* Value of a Shape operator output: the input dims as symbolic constants —
   defined exactly when every dimension is a known expression. *)
let shape_as_value (s : Shape.t) : Value_info.t =
  match s with
  | Shape.Undef -> Value_info.undef
  | Shape.Nac -> no_value
  | Shape.Ranked d ->
    let exprs = Array.map Dim.as_expr d in
    if Array.for_all Option.is_some exprs then
      Lattice.Known (Array.map Option.get exprs)
    else if Array.exists (fun x -> x = Dim.nac) d then no_value
    else Value_info.undef

(* A shape built from a value (e.g. the target of Reshape / Expand):
   rank comes from the carrier tensor's shape when the value is unknown. *)
let shape_from_value_rank ~(value : Value_info.t) ~(carrier : Shape.t) :
    Expr.t array option * int option =
  let rank =
    match Shape.dims carrier with
    | Some [| d |] -> Dim.as_const d
    | _ -> None
  in
  match value with
  | Lattice.Known exprs -> Some exprs, Some (Array.length exprs)
  | Lattice.Undef | Lattice.Nac -> None, rank

let unknown_dims_shape rank_opt ~(value : Value_info.t) =
  (* No value: rank (from the 1-d carrier extent) may still be known.
     While the value is still Undef the dims may yet improve; once Nac they
     never will. *)
  let d = match value with Lattice.Undef -> Dim.undef | _ -> Dim.nac in
  match rank_opt with
  | Some r -> Shape.Ranked (Array.make r d)
  | None -> ( match value with Lattice.Undef -> Shape.Undef | _ -> Shape.Nac)

(* ------------------------------------------------------------------ *)
(* Forward transfer                                                    *)
(* ------------------------------------------------------------------ *)

let forward_matmul sa sb =
  match sa, sb with
  | Shape.Ranked da, Shape.Ranked db ->
    let ra = Array.length da and rb = Array.length db in
    if ra = 0 || rb = 0 then Shape.Nac
    else if ra = 1 && rb = 1 then Shape.scalar
    else if ra = 1 then begin
      (* [k] × [..., k, n] → [..., n] *)
      let out = Array.make (rb - 1) Dim.undef in
      Array.blit db 0 out 0 (rb - 2);
      out.(rb - 2) <- db.(rb - 1);
      Shape.Ranked out
    end
    else if rb = 1 then Shape.Ranked (Array.sub da 0 (ra - 1))
    else begin
      let batch_a = Array.sub da 0 (ra - 2) and batch_b = Array.sub db 0 (rb - 2) in
      let batch, _ = Shape.broadcast (Shape.Ranked batch_a) (Shape.Ranked batch_b) in
      match batch with
      | Shape.Ranked bd ->
        Shape.Ranked (Array.append bd [| da.(ra - 2); db.(rb - 1) |])
      | Shape.Undef -> Shape.Undef
      | Shape.Nac -> Shape.Nac
    end
  | Shape.Nac, _ | _, Shape.Nac -> Shape.Nac
  | Shape.Undef, _ | _, Shape.Undef -> Shape.Undef

let forward_conv2d (attrs : Op.conv_attrs) sx sw =
  match sx, sw with
  | Shape.Ranked dx, Shape.Ranked dw when Array.length dx = 4 && Array.length dw = 4 ->
    let sh, sw_ = attrs.stride in
    let pt, pl, pb, pr = attrs.pads in
    let dh, dw_ = attrs.dilation in
    let kh = Dim.as_const dw.(2) and kw = Dim.as_const dw.(3) in
    (match kh, kw with
    | Some kh, Some kw ->
      Shape.Ranked
        [|
          dx.(0);
          dw.(0);
          spatial_out_dim dx.(2) ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb
            ~dilation:dh;
          spatial_out_dim dx.(3) ~kernel:kw ~stride:sw_ ~pad_begin:pl ~pad_end:pr
            ~dilation:dw_;
        |]
    | _ -> Shape.Undef)
  | Shape.Nac, _ | _, Shape.Nac -> Shape.Nac
  | _ -> Shape.Undef

let forward_pool (attrs : Op.pool_attrs) sx =
  match sx with
  | Shape.Ranked dx when Array.length dx = 4 ->
    let kh, kw = attrs.kernel in
    let sh, sw = attrs.pool_stride in
    let pt, pl, pb, pr = attrs.pool_pads in
    Shape.Ranked
      [|
        dx.(0);
        dx.(1);
        spatial_out_dim dx.(2) ~kernel:kh ~stride:sh ~pad_begin:pt ~pad_end:pb ~dilation:1;
        spatial_out_dim dx.(3) ~kernel:kw ~stride:sw ~pad_begin:pl ~pad_end:pr ~dilation:1;
      |]
  | s -> s

let forward_reduce ~axes ~keepdims s =
  match s with
  | Shape.Ranked d ->
    let r = Array.length d in
    let axes = if axes = [] then List.init r Fun.id else List.map (normalize_axis r) axes in
    let reduced = Array.make r false in
    List.iter (fun a -> if a >= 0 && a < r then reduced.(a) <- true) axes;
    if keepdims then
      Shape.Ranked (Array.mapi (fun i x -> if reduced.(i) then Dim.of_int 1 else x) d)
    else
      Shape.Ranked
        (Array.of_list
           (List.filteri (fun i _ -> not reduced.(i)) (Array.to_list d)))
  | s -> s

let forward_slice io =
  let data = shape_in io 0 in
  match data with
  | Shape.Undef -> Shape.Undef
  | Shape.Nac -> Shape.Nac
  | Shape.Ranked d ->
    let r = Array.length d in
    let starts = Value_info.as_exprs (value_in io 1) in
    let ends = Value_info.as_exprs (value_in io 2) in
    let axes = Value_info.as_ints (value_in io 3) in
    let steps = Value_info.as_ints (value_in io 4) in
    (match starts, ends, axes, steps with
    | Some starts, Some ends, Some axes, Some steps
      when List.length axes = Array.length starts
           && List.length axes = Array.length ends
           && List.length axes = List.length steps ->
      let out = Array.copy d in
      let ok = ref true in
      List.iteri
        (fun i axis ->
          let axis = normalize_axis r axis in
          let step = List.nth steps i in
          if axis < 0 || axis >= r || step <= 0 then ok := false
          else
            match Dim.as_expr d.(axis) with
            | None -> out.(axis) <- Dim.undef
            | Some dim_e ->
              let clamp v =
                (* Negative literals count from the end; INT_MAX-style
                   sentinels clamp to the extent. *)
                match Expr.as_const v with
                | Some c when c < 0 -> Expr.add dim_e (Expr.const c)
                | Some c when c >= 0x3FFFFFFF -> dim_e
                | _ -> Expr.min_ v dim_e
              in
              let s = clamp starts.(i) and e = clamp ends.(i) in
              let span = Expr.sub e s in
              let cnt =
                if step = 1 then span
                else Expr.div (Expr.add span (Expr.const (step - 1))) (Expr.const step)
              in
              out.(axis) <- Dim.of_expr (Expr.max_ Expr.zero cnt))
        axes;
      if !ok then Shape.Ranked out
      else Shape.Ranked (Array.make r Dim.nac)
    | _ ->
      (* Rank is preserved even when the bounds are dynamic. *)
      let filler =
        if Array.exists (fun (v : Value_info.t) -> v = Lattice.Nac)
             [| value_in io 1; value_in io 2; value_in io 3; value_in io 4 |]
        then Dim.nac
        else Dim.undef
      in
      Shape.Ranked (Array.make r filler))

let slice_value io =
  (* Contents tracking for 1-d slices with constant bounds: the common
     Shape → Slice → … shape-arithmetic chain. *)
  match Value_info.as_exprs (value_in io 0) with
  | None -> pending_value [| value_in io 0 |]
  | Some data -> (
    match
      ( Value_info.as_ints (value_in io 1),
        Value_info.as_ints (value_in io 2),
        Value_info.as_ints (value_in io 3),
        Value_info.as_ints (value_in io 4) )
    with
    | Some [ s ], Some [ e ], Some [ a ], Some [ st ]
      when (a = 0 || a = -1) && st = 1 ->
      let n = Array.length data in
      let norm v = if v < 0 then max 0 (v + n) else min v n in
      let s = norm s and e = norm e in
      if e >= s then Lattice.Known (Array.sub data s (e - s)) else no_value
    | _ -> no_value)

let forward_reshape io =
  let data = shape_in io 0 in
  let target_value = value_in io 1 in
  let exprs, rank = shape_from_value_rank ~value:target_value ~carrier:(shape_in io 1) in
  match exprs with
  | None -> unknown_dims_shape rank ~value:target_value, Value_info.undef
  | Some exprs ->
    let numel_in = Shape.numel data in
    let dims =
      Array.mapi
        (fun i e ->
          match Expr.as_const e with
          | Some 0 -> Shape.dim data i  (* ONNX: 0 copies the input dim *)
          | Some -1 -> Dim.undef  (* resolved below *)
          | _ -> Dim.of_expr e)
        exprs
    in
    let minus_one = ref None in
    Array.iteri
      (fun i e -> if Expr.as_const e = Some (-1) then minus_one := Some i)
      exprs;
    (match !minus_one, numel_in with
    | Some i, Some total ->
      let others =
        Array.to_list dims
        |> List.filteri (fun j _ -> j <> i)
        |> List.map Dim.as_expr
      in
      if List.for_all Option.is_some others then
        dims.(i) <-
          Dim.of_expr (Expr.div total (Expr.product (List.map Option.get others)))
    | Some _, None | None, _ -> ());
    Shape.Ranked dims, value_in io 0

let forward_gather ~axis io =
  let data = shape_in io 0 and ind = shape_in io 1 in
  let shape =
    match data, ind with
    | Shape.Ranked d, Shape.Ranked ix ->
      let r = Array.length d in
      let axis = normalize_axis r axis in
      if axis < 0 || axis >= r then Shape.Nac
      else
        Shape.Ranked
          (Array.concat [ Array.sub d 0 axis; ix; Array.sub d (axis + 1) (r - axis - 1) ])
    | Shape.Nac, _ | _, Shape.Nac -> Shape.Nac
    | Shape.Undef, _ | _, Shape.Undef -> Shape.Undef
  in
  let value =
    match
      Value_info.as_exprs (value_in io 0), Value_info.as_ints (value_in io 1), data
    with
    | Some d, Some picks, Shape.Ranked dd when Array.length dd <= 1 && axis = 0 ->
      let n = Array.length d in
      let ok = List.for_all (fun i -> i >= -n && i < n) picks in
      if ok then
        Lattice.Known
          (Array.of_list (List.map (fun i -> d.(if i < 0 then i + n else i)) picks))
      else no_value
    | _ -> pending_value [| value_in io 0; value_in io 1 |]
  in
  shape, value

let forward_concat ~axis io =
  let shapes = Array.to_list io.in_shapes in
  let shape =
    match shapes with
    | [] -> Shape.Nac
    | first :: rest -> Shape.concat_dim first rest ~axis
  in
  let value =
    (* Track contents when concatenating 1-d (or scalar) integer pieces
       along axis 0 — the idiom that assembles Reshape targets. *)
    let pieces = Array.to_list io.in_values |> List.map Value_info.as_exprs in
    let rank_ok =
      List.for_all
        (fun s -> match Shape.rank s with Some r -> r <= 1 | None -> false)
        shapes
    in
    if axis = 0 && rank_ok && List.for_all Option.is_some pieces then
      Lattice.Known (Array.concat (List.map Option.get pieces))
    else pending_value io.in_values
  in
  shape, value

let forward_expand io =
  let data = shape_in io 0 in
  let target_value = value_in io 1 in
  let exprs, rank = shape_from_value_rank ~value:target_value ~carrier:(shape_in io 1) in
  match exprs, data with
  | Some exprs, Shape.Ranked _ ->
    let target = Shape.of_exprs (Array.to_list exprs) in
    let out, _ = Shape.broadcast data target in
    out
  | Some exprs, _ -> Shape.of_exprs (Array.to_list exprs)
  | None, _ -> unknown_dims_shape rank ~value:target_value

let forward_pad io =
  match shape_in io 0 with
  | Shape.Ranked d -> (
    let r = Array.length d in
    match Value_info.as_exprs (value_in io 1) with
    | Some pads when Array.length pads = 2 * r ->
      Shape.Ranked
        (Array.mapi
           (fun i x ->
             match Dim.as_expr x with
             | Some e -> Dim.of_expr (Expr.add e (Expr.add pads.(i) pads.(r + i)))
             | None -> x)
           d)
    | Some _ -> Shape.Ranked (Array.make r Dim.nac)
    | None ->
      let filler = if value_in io 1 = Lattice.Nac then Dim.nac else Dim.undef in
      Shape.Ranked (Array.make r filler))
  | s -> s

let forward_tile io =
  match shape_in io 0, Value_info.as_exprs (value_in io 1) with
  | Shape.Ranked d, Some reps when Array.length reps = Array.length d ->
    Shape.Ranked
      (Array.mapi
         (fun i x ->
           match Dim.as_expr x with
           | Some e -> Dim.of_expr (Expr.mul e reps.(i))
           | None -> x)
         d)
  | (Shape.Ranked d), None ->
    let filler = if value_in io 1 = Lattice.Nac then Dim.nac else Dim.undef in
    Shape.Ranked (Array.make (Array.length d) filler)
  | s, _ -> s

let forward_resize io =
  match shape_in io 0 with
  | Shape.Ranked d when Array.length d >= 2 -> (
    match Value_info.as_exprs (value_in io 1) with
    | Some sizes when Array.length sizes = Array.length d - 2 ->
      Shape.Ranked
        (Array.append [| d.(0); d.(1) |] (Array.map Dim.of_expr sizes))
    | Some _ -> Shape.Nac
    | None ->
      let filler = if value_in io 1 = Lattice.Nac then Dim.nac else Dim.undef in
      Shape.Ranked
        (Array.append [| d.(0); d.(1) |] (Array.make (Array.length d - 2) filler)))
  | s -> s

let forward_range io =
  let start = value_in io 0 and limit = value_in io 1 and delta = value_in io 2 in
  let scalar (v : Value_info.t) =
    match Value_info.as_exprs v with
    | Some [| e |] -> Some e
    | _ -> None
  in
  match scalar start, scalar limit, scalar delta with
  | Some s, Some l, Some d ->
    let count =
      match Expr.as_const d with
      | Some dc when dc > 0 ->
        Expr.max_ Expr.zero
          (Expr.div (Expr.add (Expr.sub l s) (Expr.const (dc - 1))) (Expr.const dc))
      | _ -> Expr.max_ Expr.zero (Expr.div (Expr.sub l s) d)
    in
    let value =
      match Expr.as_const count with
      | Some n when n >= 0 && n <= Value_info.max_tracked_elements ->
        Lattice.Known
          (Array.init n (fun i -> Expr.add s (Expr.mul (Expr.const i) d)))
      | _ -> no_value
    in
    Shape.of_exprs [ count ], value
  | _ ->
    let pending = pending_value [| start; limit; delta |] in
    (match pending with
    | Lattice.Undef -> Shape.Undef, Value_info.undef
    | _ -> Shape.Ranked [| Dim.nac |], no_value)

let forward op io : Shape.t array * Value_info.t array =
  let s0 = shape_in io 0 in
  let v0 = value_in io 0 in
  match op with
  (* --- elementwise --- *)
  | Op.Unary (Op.Identity) -> out1 s0 v0
  | Op.Unary Op.Neg ->
    let v =
      match Value_info.as_exprs v0 with
      | Some a -> Lattice.Known (Array.map Expr.neg a)
      | None -> pending_value [| v0 |]
    in
    out1 s0 v
  | Op.Unary _ | Op.Clip _ -> out1 s0 no_value
  | Op.Cast _ -> out1 s0 v0
  | Op.Binary b ->
    let out, _ = Shape.broadcast s0 (shape_in io 1) in
    out1 out (binary_value b v0 (value_in io 1))
  | Op.Where ->
    let s, _ = Shape.broadcast s0 (shape_in io 1) in
    let s, _ = Shape.broadcast s (shape_in io 2) in
    out1 s no_value
  (* --- linear algebra --- *)
  | Op.MatMul -> out1 (forward_matmul s0 (shape_in io 1)) no_value
  | Op.Gemm { trans_a; trans_b; _ } ->
    let dims2 s swap =
      match Shape.dims s with
      | Some [| a; b |] -> Some (if swap then b, a else (a, b))
      | _ -> None
    in
    (match dims2 s0 trans_a, dims2 (shape_in io 1) trans_b with
    | Some (m, _), Some (_, n) -> out1 (Shape.Ranked [| m; n |]) no_value
    | _ ->
      if s0 = Shape.Nac || shape_in io 1 = Shape.Nac then nac1 else undef1)
  | Op.Conv attrs -> out1 (forward_conv2d attrs s0 (shape_in io 1)) no_value
  | Op.Conv1d { stride1; pads1 = pl, pr; dilation1; _ } ->
    (match s0, Shape.dims (shape_in io 1) with
    | Shape.Ranked dx, Some dw when Array.length dx = 3 && Array.length dw = 3 ->
      (match Dim.as_const dw.(2) with
      | Some k ->
        out1
          (Shape.Ranked
             [|
               dx.(0);
               dw.(0);
               spatial_out_dim dx.(2) ~kernel:k ~stride:stride1 ~pad_begin:pl
                 ~pad_end:pr ~dilation:dilation1;
             |])
          no_value
      | None -> undef1)
    | Shape.Nac, _ -> nac1
    | _ -> undef1)
  | Op.MaxPool attrs | Op.AveragePool attrs -> out1 (forward_pool attrs s0) no_value
  | Op.GlobalAveragePool ->
    (match s0 with
    | Shape.Ranked d when Array.length d >= 3 ->
      out1
        (Shape.Ranked
           (Array.mapi (fun i x -> if i < 2 then x else Dim.of_int 1) d))
        no_value
    | s -> out1 s no_value)
  (* --- normalization, softmax --- *)
  | Op.BatchNorm _ | Op.LayerNorm _ | Op.GroupNorm _ | Op.InstanceNorm _
  | Op.Softmax _ | Op.LogSoftmax _ | Op.CumSum _ -> out1 s0 no_value
  (* --- reductions --- *)
  | Op.Reduce { axes; keepdims; _ } -> out1 (forward_reduce ~axes ~keepdims s0) no_value
  | Op.ArgMax { axis; keepdims } | Op.ArgMin { axis; keepdims } ->
    out1 (forward_reduce ~axes:[ axis ] ~keepdims s0) no_value
  (* --- layout --- *)
  | Op.Transpose perm ->
    (match s0 with
    | Shape.Ranked d when Array.length d = List.length perm ->
      out1 (Shape.Ranked (Array.of_list (List.map (fun p -> d.(p)) perm))) no_value
    | Shape.Ranked _ -> nac1
    | s -> out1 s no_value)
  | Op.Reshape ->
    let s, v = forward_reshape io in
    out1 s v
  | Op.Flatten { axis } ->
    (match s0 with
    | Shape.Ranked d ->
      let r = Array.length d in
      let axis = normalize_axis r axis in
      let prod lo hi =
        let es = Array.to_list (Array.sub d lo (hi - lo)) |> List.map Dim.as_expr in
        if List.for_all Option.is_some es then
          Dim.of_expr (Expr.product (List.map Option.get es))
        else Dim.undef
      in
      out1 (Shape.Ranked [| prod 0 axis; prod axis r |]) no_value
    | s -> out1 s no_value)
  | Op.Squeeze axes ->
    (match s0 with
    | Shape.Ranked d ->
      let r = Array.length d in
      let drop = List.map (normalize_axis r) axes in
      let kept =
        Array.to_list d |> List.filteri (fun i _ -> not (List.mem i drop))
      in
      out1 (Shape.of_dims kept) v0
    | s -> out1 s v0)
  | Op.Unsqueeze axes ->
    (match s0 with
    | Shape.Ranked d ->
      let r = Array.length d + List.length axes in
      let axes = List.map (normalize_axis r) axes in
      let out = Array.make r Dim.undef in
      List.iter (fun a -> if a >= 0 && a < r then out.(a) <- Dim.of_int 1) axes;
      let src = ref 0 in
      Array.iteri
        (fun i x ->
          if not (List.mem i axes) then begin
            ignore x;
            out.(i) <- d.(!src);
            incr src
          end)
        out;
      out1 (Shape.Ranked out) v0
    | s -> out1 s v0)
  | Op.Concat { axis } ->
    let s, v = forward_concat ~axis io in
    out1 s v
  | Op.Split { axis; sizes } ->
    (match s0 with
    | Shape.Ranked d ->
      let r = Array.length d in
      let axis = normalize_axis r axis in
      let shapes =
        List.map
          (fun sz ->
            let out = Array.copy d in
            out.(axis) <- Dim.of_int sz;
            Shape.Ranked out)
          sizes
      in
      Array.of_list shapes, Array.make (List.length sizes) no_value
    | s ->
      Array.make (List.length sizes) s, Array.make (List.length sizes) no_value)
  | Op.Slice -> out1 (forward_slice io) (slice_value io)
  | Op.Gather { axis } ->
    let s, v = forward_gather ~axis io in
    out1 s v
  | Op.Pad _ -> out1 (forward_pad io) no_value
  | Op.Expand -> out1 (forward_expand io) v0
  | Op.Tile -> out1 (forward_tile io) no_value
  | Op.Resize _ -> out1 (forward_resize io) no_value
  | Op.Upsample { scales } ->
    (match s0 with
    | Shape.Ranked d when Array.length d = List.length scales + 2 ->
      let out =
        Array.mapi
          (fun i x ->
            if i < 2 then x
            else
              match Dim.as_expr x with
              | Some e -> Dim.of_expr (Expr.mul e (Expr.const (List.nth scales (i - 2))))
              | None -> x)
          d
      in
      out1 (Shape.Ranked out) no_value
    | s -> out1 s no_value)
  | Op.DepthToSpace { block } ->
    (match s0 with
    | Shape.Ranked [| n; c; h; w |] ->
      let mulc x k = Option.map (fun e -> Expr.mul e (Expr.const k)) (Dim.as_expr x) in
      let dim_of = function Some e -> Dim.of_expr e | None -> Dim.undef in
      out1
        (Shape.Ranked
           [|
             n;
             dim_of (Option.map (fun e -> Expr.div e (Expr.const (block * block)))
                       (Dim.as_expr c));
             dim_of (mulc h block);
             dim_of (mulc w block);
           |])
        no_value
    | s -> out1 s no_value)
  | Op.SpaceToDepth { block } ->
    (match s0 with
    | Shape.Ranked [| n; c; h; w |] ->
      let dim_of = function Some e -> Dim.of_expr e | None -> Dim.undef in
      let divc x k = Option.map (fun e -> Expr.div e (Expr.const k)) (Dim.as_expr x) in
      out1
        (Shape.Ranked
           [|
             n;
             dim_of (Option.map (fun e -> Expr.mul e (Expr.const (block * block)))
                       (Dim.as_expr c));
             dim_of (divc h block);
             dim_of (divc w block);
           |])
        no_value
    | s -> out1 s no_value)
  (* --- shape producers (ISDO) --- *)
  | Op.ShapeOf ->
    (match Shape.rank s0 with
    | Some r -> out1 (Shape.of_ints [ r ]) (shape_as_value s0)
    | None -> if s0 = Shape.Nac then nac1 else undef1)
  | Op.SizeOf ->
    (match Shape.numel s0 with
    | Some n -> out1 Shape.scalar (Value_info.scalar n)
    | None -> out1 Shape.scalar (if s0 = Shape.Nac then no_value else Value_info.undef))
  | Op.ConstantOfShape _ ->
    let exprs, rank = shape_from_value_rank ~value:v0 ~carrier:s0 in
    (match exprs with
    | Some exprs -> out1 (Shape.of_exprs (Array.to_list exprs)) no_value
    | None -> out1 (unknown_dims_shape rank ~value:v0) no_value)
  | Op.EyeLike -> out1 s0 no_value
  | Op.Range ->
    let s, v = forward_range io in
    out1 s v
  | Op.OneHot { depth } ->
    (match s0 with
    | Shape.Ranked d -> out1 (Shape.Ranked (Array.append d [| Dim.of_int depth |])) no_value
    | s -> out1 s no_value)
  (* --- execution determined --- *)
  | Op.TopK { axis; _ } ->
    (match s0 with
    | Shape.Ranked d ->
      let r = Array.length d in
      let axis = normalize_axis r axis in
      let k =
        match Value_info.as_exprs (value_in io 1) with
        | Some [| e |] -> Dim.of_expr e
        | _ -> if value_in io 1 = Lattice.Nac then Dim.nac else Dim.undef
      in
      let out = Array.copy d in
      if axis >= 0 && axis < r then out.(axis) <- k;
      [| Shape.Ranked out; Shape.Ranked (Array.copy out) |], [| no_value; no_value |]
    | s -> [| s; s |], [| no_value; no_value |])
  | Op.NonZero ->
    (match Shape.rank s0 with
    | Some r -> out1 (Shape.Ranked [| Dim.of_int (max r 1); Dim.nac |]) no_value
    | None -> if s0 = Shape.Nac then nac1 else undef1)
  | Op.NonMaxSuppression _ -> out1 (Shape.Ranked [| Dim.nac; Dim.of_int 3 |]) no_value
  | Op.If | Op.Loop -> nac1
  (* --- control flow --- *)
  | Op.Switch { branches } ->
    (* Every branch output carries the shape of the routed tensor; which one
       materializes is execution determined, but its shape is not. *)
    Array.make branches s0, Array.make branches v0
  | Op.Combine { branches } ->
    let s = ref Shape.Undef and v = ref Value_info.undef in
    for i = 0 to branches - 1 do
      s := Shape.meet !s (shape_in io i);
      v := Value_info.meet !v (value_in io i)
    done;
    out1 !s !v

(* ------------------------------------------------------------------ *)
(* Backward transfer                                                   *)
(* ------------------------------------------------------------------ *)

let backward op ~out_shapes io ~input_index =
  let out0 = if Array.length out_shapes > 0 then out_shapes.(0) else Shape.Undef in
  match op, input_index with
  | ( ( Op.Unary _ | Op.Clip _ | Op.Cast _ | Op.CumSum _ | Op.Softmax _
      | Op.LogSoftmax _ | Op.BatchNorm _ | Op.LayerNorm _ | Op.GroupNorm _
      | Op.InstanceNorm _ | Op.EyeLike ),
      0 ) -> out0
  | Op.Binary _, (0 | 1) -> (
    let other = shape_in io (1 - input_index) in
    let self = shape_in io input_index in
    match other, out0 with
    | Shape.Ranked od, Shape.Ranked outd ->
      if Array.length od = 0 then out0 (* scalar operand: output = this input *)
      else (
        match self with
        | Shape.Ranked sd when Array.length sd = Array.length outd ->
          (* Where the opposite operand is 1 the output dim must come from
             this input. *)
          let ro = Array.length od and r = Array.length outd in
          Shape.Ranked
            (Array.mapi
               (fun i _ ->
                 let oi = i - (r - ro) in
                 let other_dim = if oi < 0 then Dim.of_int 1 else od.(oi) in
                 if Dim.as_const other_dim = Some 1 then outd.(i) else Dim.undef)
               outd)
        | _ -> Shape.Undef)
    | _ -> Shape.Undef)
  | Op.MatMul, (0 | 1) -> (
    let self = shape_in io input_index in
    match self, out0 with
    | Shape.Ranked sd, Shape.Ranked od
      when Array.length sd >= 2 && Array.length od >= 2 ->
      let r = Array.length sd in
      let out = Array.make r Dim.undef in
      if input_index = 0 then out.(r - 2) <- od.(Array.length od - 2)
      else out.(r - 1) <- od.(Array.length od - 1);
      Shape.Ranked out
    | _ -> Shape.Undef)
  | Op.Transpose perm, 0 -> (
    match out0 with
    | Shape.Ranked od when Array.length od = List.length perm ->
      let inv = Array.make (List.length perm) 0 in
      List.iteri (fun i p -> inv.(p) <- i) perm;
      Shape.Ranked (Array.init (Array.length od) (fun i -> od.(inv.(i))))
    | _ -> Shape.Undef)
  | Op.Concat { axis }, _ -> (
    match out0 with
    | Shape.Ranked od ->
      let r = Array.length od in
      let axis = normalize_axis r axis in
      Shape.Ranked (Array.mapi (fun i d -> if i = axis then Dim.undef else d) od)
    | _ -> Shape.Undef)
  | Op.Split { axis; sizes }, 0 -> (
    match out0 with
    | Shape.Ranked od ->
      let r = Array.length od in
      let axis = normalize_axis r axis in
      let total = List.fold_left ( + ) 0 sizes in
      Shape.Ranked
        (Array.mapi (fun i d -> if i = axis then Dim.of_int total else d) od)
    | _ -> Shape.Undef)
  | Op.Reduce { axes; keepdims = true; _ }, 0 -> (
    match out0 with
    | Shape.Ranked od ->
      let r = Array.length od in
      let axes = List.map (normalize_axis r) axes in
      let axes = if axes = [] then List.init r Fun.id else axes in
      Shape.Ranked
        (Array.mapi (fun i d -> if List.mem i axes then Dim.undef else d) od)
    | _ -> Shape.Undef)
  | (Op.Conv _ | Op.Conv1d _ | Op.MaxPool _ | Op.AveragePool _ | Op.GlobalAveragePool), 0
    -> (
    (* Batch dim flows back; for convolutions the input channel count comes
       from the (constant-shaped) weight. *)
    match out0, shape_in io 0 with
    | Shape.Ranked od, Shape.Ranked sd when Array.length sd = Array.length od ->
      let out = Array.make (Array.length sd) Dim.undef in
      out.(0) <- od.(0);
      (match op, Shape.dims (shape_in io 1) with
      | Op.Conv { groups; _ }, Some dw when Array.length dw >= 2 -> (
        match Dim.as_const dw.(1) with
        | Some cg -> out.(1) <- Dim.of_int (cg * groups)
        | None -> ())
      | (Op.MaxPool _ | Op.AveragePool _ | Op.GlobalAveragePool), _ ->
        out.(1) <- od.(1)
      | _ -> ());
      Shape.Ranked out
    | _ -> Shape.Undef)
  | Op.Switch _, 0 -> out0
  | Op.Combine { branches }, i when i < branches -> out0
  | _ -> Shape.Undef

let versions_for_broadcast io =
  match Array.length io.in_shapes with
  | 0 | 1 -> 0
  | _ ->
    let _, unresolved = Shape.broadcast io.in_shapes.(0) io.in_shapes.(1) in
    unresolved
