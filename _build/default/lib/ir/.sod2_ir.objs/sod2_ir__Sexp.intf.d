lib/ir/sexp.mli:
