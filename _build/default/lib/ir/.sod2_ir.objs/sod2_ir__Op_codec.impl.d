lib/ir/op_codec.ml: List Op Printf Result Sexp Tensor
