lib/ir/sexp.ml: Buffer List Printf String
