lib/ir/op_codec.mli: Op Sexp
