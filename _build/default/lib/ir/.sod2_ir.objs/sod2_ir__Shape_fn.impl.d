lib/ir/shape_fn.ml: Array Dim Expr Fun Lattice List Op Option Shape Value_info
