lib/ir/graph.ml: Array Buffer Hashtbl List Op Option Printf Shape String Tensor
