lib/ir/graph.mli: Op Shape Tensor
