lib/ir/graph_io.mli: Graph
