lib/ir/op_class.mli: Format Op
