lib/ir/graph_io.ml: Array Buffer Dim Expr Graph Lattice List Op_codec Printf Result Sexp Shape String Tensor
