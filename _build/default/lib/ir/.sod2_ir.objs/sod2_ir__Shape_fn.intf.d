lib/ir/shape_fn.mli: Op Shape Value_info
