lib/ir/op_class.ml: Format List Op
