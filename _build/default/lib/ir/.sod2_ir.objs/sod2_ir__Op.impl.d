lib/ir/op.ml: Format List Tensor
