lib/ir/op.mli: Format Tensor
