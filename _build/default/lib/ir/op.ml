type unary =
  | Relu
  | LeakyRelu of float
  | Sigmoid
  | Tanh
  | Exp
  | Log
  | Sqrt
  | Neg
  | Abs
  | Erf
  | Gelu
  | HardSwish
  | Softplus
  | Floor
  | Ceil
  | Round
  | Not
  | Identity
  | Sign
  | Reciprocal
  | Softsign

type binary =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Max2
  | Min2
  | Mod2
  | Equal
  | Less
  | Greater
  | And
  | Or

type reduce_kind =
  | Rsum
  | Rmean
  | Rmax
  | Rmin
  | Rprod
  | Rl2

type conv_attrs = {
  stride : int * int;
  pads : int * int * int * int;
  dilation : int * int;
  groups : int;
}

type pool_attrs = {
  kernel : int * int;
  pool_stride : int * int;
  pool_pads : int * int * int * int;
}

type resize_mode =
  | Nearest

type t =
  | Unary of unary
  | Binary of binary
  | Clip of float * float
  | Cast of Tensor.dtype
  | Where
  | MatMul
  | Gemm of { alpha : float; beta : float; trans_a : bool; trans_b : bool }
  | Conv of conv_attrs
  | Conv1d of { stride1 : int; pads1 : int * int; dilation1 : int; groups1 : int }
  | MaxPool of pool_attrs
  | AveragePool of pool_attrs
  | GlobalAveragePool
  | BatchNorm of { eps : float }
  | LayerNorm of { eps : float }
  | GroupNorm of { num_groups : int; eps : float }
  | InstanceNorm of { eps : float }
  | Softmax of { axis : int }
  | LogSoftmax of { axis : int }
  | Reduce of { rkind : reduce_kind; axes : int list; keepdims : bool }
  | ArgMax of { axis : int; keepdims : bool }
  | ArgMin of { axis : int; keepdims : bool }
  | CumSum of { axis : int }
  | Transpose of int list
  | Reshape
  | Flatten of { axis : int }
  | Squeeze of int list
  | Unsqueeze of int list
  | Concat of { axis : int }
  | Split of { axis : int; sizes : int list }
  | Slice
  | Gather of { axis : int }
  | Pad of { pad_value : float }
  | Expand
  | Tile
  | Resize of resize_mode
  | Upsample of { scales : int list }
  | DepthToSpace of { block : int }
  | SpaceToDepth of { block : int }
  | ShapeOf
  | SizeOf
  | ConstantOfShape of { fill : float }
  | EyeLike
  | Range
  | OneHot of { depth : int }
  | TopK of { axis : int; largest : bool }
  | NonZero
  | NonMaxSuppression of { max_out : int; iou_threshold : float }
  | If
  | Loop
  | Switch of { branches : int }
  | Combine of { branches : int }

let unary_name = function
  | Relu -> "Relu"
  | LeakyRelu _ -> "LeakyRelu"
  | Sigmoid -> "Sigmoid"
  | Tanh -> "Tanh"
  | Exp -> "Exp"
  | Log -> "Log"
  | Sqrt -> "Sqrt"
  | Neg -> "Neg"
  | Abs -> "Abs"
  | Erf -> "Erf"
  | Gelu -> "Gelu"
  | HardSwish -> "HardSwish"
  | Softplus -> "Softplus"
  | Floor -> "Floor"
  | Ceil -> "Ceil"
  | Round -> "Round"
  | Not -> "Not"
  | Identity -> "Identity"
  | Sign -> "Sign"
  | Reciprocal -> "Reciprocal"
  | Softsign -> "Softsign"

let binary_name = function
  | Add -> "Add"
  | Sub -> "Sub"
  | Mul -> "Mul"
  | Div -> "Div"
  | Pow -> "Pow"
  | Max2 -> "Max"
  | Min2 -> "Min"
  | Mod2 -> "Mod"
  | Equal -> "Equal"
  | Less -> "Less"
  | Greater -> "Greater"
  | And -> "And"
  | Or -> "Or"

let reduce_name = function
  | Rsum -> "ReduceSum"
  | Rmean -> "ReduceMean"
  | Rmax -> "ReduceMax"
  | Rmin -> "ReduceMin"
  | Rprod -> "ReduceProd"
  | Rl2 -> "ReduceL2"

let name = function
  | Unary u -> unary_name u
  | Binary b -> binary_name b
  | Clip _ -> "Clip"
  | Cast _ -> "Cast"
  | Where -> "Where"
  | MatMul -> "MatMul"
  | Gemm _ -> "Gemm"
  | Conv _ -> "Conv"
  | Conv1d _ -> "Conv1d"
  | MaxPool _ -> "MaxPool"
  | AveragePool _ -> "AveragePool"
  | GlobalAveragePool -> "GlobalAveragePool"
  | BatchNorm _ -> "BatchNormalization"
  | LayerNorm _ -> "LayerNormalization"
  | GroupNorm _ -> "GroupNormalization"
  | InstanceNorm _ -> "InstanceNormalization"
  | Softmax _ -> "Softmax"
  | LogSoftmax _ -> "LogSoftmax"
  | Reduce { rkind; _ } -> reduce_name rkind
  | ArgMax _ -> "ArgMax"
  | ArgMin _ -> "ArgMin"
  | CumSum _ -> "CumSum"
  | Transpose _ -> "Transpose"
  | Reshape -> "Reshape"
  | Flatten _ -> "Flatten"
  | Squeeze _ -> "Squeeze"
  | Unsqueeze _ -> "Unsqueeze"
  | Concat _ -> "Concat"
  | Split _ -> "Split"
  | Slice -> "Slice"
  | Gather _ -> "Gather"
  | Pad _ -> "Pad"
  | Expand -> "Expand"
  | Tile -> "Tile"
  | Resize _ -> "Resize"
  | Upsample _ -> "Upsample"
  | DepthToSpace _ -> "DepthToSpace"
  | SpaceToDepth _ -> "SpaceToDepth"
  | ShapeOf -> "Shape"
  | SizeOf -> "Size"
  | ConstantOfShape _ -> "ConstantOfShape"
  | EyeLike -> "EyeLike"
  | Range -> "Range"
  | OneHot _ -> "OneHot"
  | TopK _ -> "TopK"
  | NonZero -> "NonZero"
  | NonMaxSuppression _ -> "NonMaxSuppression"
  | If -> "If"
  | Loop -> "Loop"
  | Switch _ -> "Switch"
  | Combine _ -> "Combine"

let n_outputs = function
  | TopK _ -> 2
  | Split { sizes; _ } -> List.length sizes
  | Switch { branches } -> branches
  | _ -> 1

let is_elementwise = function
  | Unary _ | Binary _ | Clip _ | Cast _ | Where -> true
  | _ -> false

let is_activation = function
  | Unary
      ( Relu | LeakyRelu _ | Sigmoid | Tanh | Gelu | HardSwish | Softplus | Erf | Exp
      | Sqrt | Abs | Neg | Identity )
  | Clip _ -> true
  | _ -> false

let is_heavy = function
  | MatMul | Gemm _ | Conv _ | Conv1d _ -> true
  | _ -> false

let is_control_flow = function
  | Switch _ | Combine _ | If | Loop -> true
  | _ -> false

let pp ppf op = Format.pp_print_string ppf (name op)
