type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let int i = Atom (string_of_int i)
let float f = Atom (Printf.sprintf "%h" f)

let as_atom = function Atom s -> Some s | List _ -> None
let as_int = function Atom s -> int_of_string_opt s | List _ -> None
let as_float = function Atom s -> float_of_string_opt s | List _ -> None

let rec render buf = function
  | Atom s -> Buffer.add_string buf s
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ' ';
        render buf item)
      items;
    Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  render buf t;
  Buffer.contents buf

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = Error (Printf.sprintf "%s at offset %d" msg !pos) in
  let is_space c = c = ' ' || c = '\n' || c = '\t' || c = '\r' in
  let skip_ws () =
    while !pos < n && is_space input.[!pos] do
      incr pos
    done
  in
  let rec parse_one () =
    skip_ws ();
    if !pos >= n then Error "unexpected end of input"
    else if input.[!pos] = '(' then begin
      incr pos;
      let rec items acc =
        skip_ws ();
        if !pos >= n then error "unterminated list"
        else if input.[!pos] = ')' then begin
          incr pos;
          Ok (List (List.rev acc))
        end
        else
          match parse_one () with
          | Ok item -> items (item :: acc)
          | Error e -> Error e
      in
      items []
    end
    else if input.[!pos] = ')' then error "unexpected ')'"
    else begin
      let start = !pos in
      while !pos < n && (not (is_space input.[!pos])) && input.[!pos] <> '(' && input.[!pos] <> ')' do
        incr pos
      done;
      Ok (Atom (String.sub input start (!pos - start)))
    end
  in
  let rec toplevel acc =
    skip_ws ();
    if !pos >= n then Ok (List.rev acc)
    else
      match parse_one () with
      | Ok item -> toplevel (item :: acc)
      | Error e -> Error e
  in
  toplevel []
