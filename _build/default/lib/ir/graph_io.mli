(** Textual (de)serialization of computational graphs — the repository's
    model file format.

    A graph is stored as a sequence of s-expressions, one per tensor in id
    order (graph inputs with their possibly-symbolic shapes, constants with
    bit-exact tensor data, one [node] form per operator at its first output
    tensor) followed by the output list.  Replaying the records through
    {!Graph.Builder} reproduces the exact tensor and node numbering, so
    serialization round-trips losslessly:

    {[
      (sod2-graph 1)
      (input 0 image (shape 1 3 (sym H) (sym W)))
      (const 1 w1 f32 (dims 8 3 3 3) (data 0x1.2p-4 ...))
      (node (op (conv (1 1) (1 1 1 1) (1 1) 1)) (name conv0) (inputs 0 1) (outputs 2))
      (outputs 2)
    ]} *)

val to_string : Graph.t -> string

val of_string : string -> (Graph.t, string) result
(** Parse and rebuild; errors carry the offending form. *)

val save : Graph.t -> string -> unit
(** Write to a file path. *)

val load : string -> (Graph.t, string) result
