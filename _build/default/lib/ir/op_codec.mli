(** Operator (de)serialization for the graph file format: a bijection
    between {!Op.t} (with all attributes) and s-expressions. *)

val to_sexp : Op.t -> Sexp.t

val of_sexp : Sexp.t -> (Op.t, string) result
(** Inverse of {!to_sexp}; the error names the offending form. *)
