type category =
  | Isdo
  | Isdos
  | Isvdos
  | Edo

let base_category : Op.t -> category = function
  | Op.ShapeOf | Op.SizeOf | Op.EyeLike | Op.ConstantOfShape _ -> Isdo
  | Op.Unary _ | Op.Binary _ | Op.Clip _ | Op.Cast _ | Op.Where | Op.MatMul | Op.Gemm _
  | Op.Conv _ | Op.Conv1d _ | Op.MaxPool _ | Op.AveragePool _ | Op.GlobalAveragePool
  | Op.BatchNorm _ | Op.LayerNorm _ | Op.GroupNorm _ | Op.InstanceNorm _
  | Op.Softmax _ | Op.LogSoftmax _
  | Op.Reduce _ | Op.ArgMax _ | Op.ArgMin _ | Op.CumSum _ | Op.Transpose _
  | Op.Flatten _ | Op.Squeeze _ | Op.Unsqueeze _ | Op.Concat _ | Op.Split _
  | Op.Gather _ | Op.DepthToSpace _ | Op.SpaceToDepth _ | Op.OneHot _ | Op.Upsample _
    -> Isdos
  | Op.Reshape | Op.Slice | Op.Pad _ | Op.Expand | Op.Tile | Op.Resize _ | Op.Range
  | Op.TopK _ -> Isvdos
  | Op.NonZero | Op.NonMaxSuppression _ | Op.If | Op.Loop | Op.Switch _ | Op.Combine _
    -> Edo

let value_inputs : Op.t -> int list = function
  | Op.Reshape -> [ 1 ]
  | Op.Slice -> [ 1; 2; 3; 4 ]
  | Op.Pad _ -> [ 1 ]
  | Op.Expand -> [ 1 ]
  | Op.Tile -> [ 1 ]
  | Op.Resize _ -> [ 1 ]
  | Op.Range -> [ 0; 1; 2 ]
  | Op.TopK _ -> [ 1 ]
  | Op.ConstantOfShape _ -> [ 0 ]
  | _ -> []

let classify op ~value_known =
  match base_category op with
  | Isvdos ->
    if List.for_all value_known (value_inputs op) then Isdos else Isvdos
  | c -> c

let category_name = function
  | Isdo -> "Input Shape Determined Output"
  | Isdos -> "Input Shape Determined Output Shape"
  | Isvdos -> "Input Shape & Value Determined Output Shape"
  | Edo -> "Execution Determined Output"

let pp_category ppf c = Format.pp_print_string ppf (category_name c)
