(** Minimal s-expressions — the carrier syntax of the graph file format
    ({!Graph_io}).  Atoms are whitespace/paren-delimited tokens; no string
    escapes are needed because the format only stores identifiers and
    numbers. *)

type t =
  | Atom of string
  | List of t list

val to_string : t -> string
(** Render with minimal whitespace. *)

val parse : string -> (t list, string) result
(** Parse a sequence of toplevel s-expressions; the error carries a
    position message. *)

val atom : string -> t
val int : int -> t
val float : float -> t
(** Hex float notation ([%h]) — bit-exact round-trips. *)

val as_atom : t -> string option
val as_int : t -> int option
val as_float : t -> float option
