(** Per-operator transfer functions of the RDP analysis — the [F] component
    of the four-tuple <G, D, L', F> (§4.1).

    {!forward} implements the forward Update transfer: from the (symbolic)
    shapes and values of an operator's inputs it derives the shapes and
    values of its outputs.  The function dispatched internally depends on
    the operator's dynamism category, exactly as in Table 3 of the paper:
    ISDO operators produce output {e values} from input {e shapes}, ISDOS
    operators propagate shapes structurally, ISVDOS operators additionally
    consume input values, and EDO operators yield [Nac] (with the exception
    of rank information that is determined regardless of execution, such as
    [NonZero] producing a [rank × ?] matrix).

    {!backward} implements the backward transfer: it refines an input's
    shape from the operator's known output shapes, used by Alg. 1 when a
    predecessor is still [undef].  Only refinements that are sound for
    every execution are applied (e.g. a broadcast input dimension is pinned
    to the output dimension only when the opposite operand is known to be
    1 there). *)

type io = {
  in_shapes : Shape.t array;
  in_values : Value_info.t array;
}

val forward : Op.t -> io -> Shape.t array * Value_info.t array
(** [forward op io] is the shapes and values of the operator's outputs.
    Array lengths equal {!Op.n_outputs}.  Never raises on [Undef]/[Nac]
    inputs — unknown information flows through as [Undef]/[Nac]. *)

val backward :
  Op.t -> out_shapes:Shape.t array -> io -> input_index:int -> Shape.t
(** [backward op ~out_shapes io ~input_index] is a (possibly refined) shape
    for the given input, to be met with the input's current shape.
    Returns [Shape.Undef] when nothing can be deduced. *)

val versions_for_broadcast : io -> int
(** Number of statically-unresolvable broadcast dimension pairs among the
    first two inputs — each doubles the fused-code versions a compiler
    without RDP equality facts would need (Fig. 4 of the paper shows the
    2³ = 8 case). *)
