(** Dynamism classification of operators (§3 of the paper).

    Every operator belongs to one of four categories ordered by increasing
    dynamism.  The category decides which RDP transfer functions apply and
    how aggressively the optimizer may treat the operator.  Classification
    is {e context dependent}: an {e Input Shape & Value Determined Output
    Shape} operator whose shape-determining operand values are known
    (constants, or inferred by RDP) degrades to {e Input Shape Determined
    Output Shape} — the paper's §3 "Discussion" transformation. *)

type category =
  | Isdo  (** Input Shape Determined Output — e.g. [Shape], [EyeLike] *)
  | Isdos  (** Input Shape Determined Output Shape — e.g. [Conv], [MatMul] *)
  | Isvdos
      (** Input Shape & Value Determined Output Shape — e.g. [Reshape],
          [Range] *)
  | Edo  (** Execution Determined Output — e.g. [NonZero], [<Switch, Combine>] *)

val base_category : Op.t -> category
(** Static category of the operator, ignoring context (Table 2). *)

val value_inputs : Op.t -> int list
(** Indices of the operator's inputs whose {e values} (not just shapes)
    determine the output shape — empty except for [Isvdos] operators. *)

val classify : Op.t -> value_known:(int -> bool) -> category
(** [classify op ~value_known] is the context-sensitive category:
    [value_known i] must say whether the value of input [i] is statically
    known.  An [Isvdos] operator with all its {!value_inputs} known becomes
    [Isdos]. *)

val category_name : category -> string
val pp_category : Format.formatter -> category -> unit
