(** The operator vocabulary of the computational-graph IR.

    The set mirrors the ONNX operators the paper classifies (Table 2) plus
    the customized [<Switch, Combine>] pair SoD² introduces for dynamic
    control flow.  Attributes are typed fields of each constructor; operands
    that ONNX passes as {e input tensors} (a [Reshape] target shape, [Slice]
    bounds, [TopK]'s [k] …) are graph inputs here too, which is exactly what
    makes those operators {e Input Shape & Value Determined}. *)

type unary =
  | Relu
  | LeakyRelu of float  (** negative-slope coefficient *)
  | Sigmoid
  | Tanh
  | Exp
  | Log
  | Sqrt
  | Neg
  | Abs
  | Erf
  | Gelu
  | HardSwish
  | Softplus
  | Floor
  | Ceil
  | Round
  | Not
  | Identity
  | Sign
  | Reciprocal
  | Softsign

type binary =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Max2
  | Min2
  | Mod2
  | Equal
  | Less
  | Greater
  | And
  | Or

type reduce_kind =
  | Rsum
  | Rmean
  | Rmax
  | Rmin
  | Rprod
  | Rl2

type conv_attrs = {
  stride : int * int;
  pads : int * int * int * int;  (** top, left, bottom, right *)
  dilation : int * int;
  groups : int;
}

type pool_attrs = {
  kernel : int * int;
  pool_stride : int * int;
  pool_pads : int * int * int * int;
}

type resize_mode =
  | Nearest

type t =
  (* elementwise *)
  | Unary of unary
  | Binary of binary
  | Clip of float * float
  | Cast of Tensor.dtype
  | Where
  (* linear algebra *)
  | MatMul
  | Gemm of { alpha : float; beta : float; trans_a : bool; trans_b : bool }
  | Conv of conv_attrs  (** 2-d, NCHW *)
  | Conv1d of { stride1 : int; pads1 : int * int; dilation1 : int; groups1 : int }
  | MaxPool of pool_attrs
  | AveragePool of pool_attrs
  | GlobalAveragePool
  (* normalization / softmax *)
  | BatchNorm of { eps : float }
  | LayerNorm of { eps : float }
  | GroupNorm of { num_groups : int; eps : float }
  | InstanceNorm of { eps : float }
      (** normalization over each channel's spatial extent *)
  | Softmax of { axis : int }
  | LogSoftmax of { axis : int }
  (* reductions and search *)
  | Reduce of { rkind : reduce_kind; axes : int list; keepdims : bool }
      (** [axes = []] reduces all axes *)
  | ArgMax of { axis : int; keepdims : bool }
  | ArgMin of { axis : int; keepdims : bool }
  | CumSum of { axis : int }
  (* layout *)
  | Transpose of int list
  | Reshape  (** inputs: data, shape (int tensor; may contain one -1) *)
  | Flatten of { axis : int }
  | Squeeze of int list
  | Unsqueeze of int list
  | Concat of { axis : int }
  | Split of { axis : int; sizes : int list }
  | Slice  (** inputs: data, starts, ends, axes, steps *)
  | Gather of { axis : int }
  | Pad of { pad_value : float }  (** inputs: data, pads (int tensor, rank*2) *)
  | Expand  (** inputs: data, shape *)
  | Tile  (** inputs: data, repeats *)
  | Resize of resize_mode  (** inputs: data, sizes (int tensor, spatial) *)
  | Upsample of { scales : int list }  (** static integer scales per spatial axis *)
  | DepthToSpace of { block : int }
  | SpaceToDepth of { block : int }
  (* shape producers *)
  | ShapeOf  (** ONNX [Shape] *)
  | SizeOf  (** ONNX [Size] *)
  | ConstantOfShape of { fill : float }  (** inputs: shape *)
  | EyeLike
  | Range  (** inputs: start, limit, delta (int scalars) *)
  | OneHot of { depth : int }
  (* execution-determined *)
  | TopK of { axis : int; largest : bool }  (** inputs: data, k (int scalar) *)
  | NonZero
  | NonMaxSuppression of { max_out : int; iou_threshold : float }
  | If
  | Loop
  (* control flow (the paper's customized pair) *)
  | Switch of { branches : int }  (** inputs: data, pred; one output per branch *)
  | Combine of { branches : int }  (** inputs: branch outputs …, pred *)

val name : t -> string
(** Mnemonic used in printing, DOT export and statistics. *)

val n_outputs : t -> int
(** Number of output tensors the operator produces. *)

val is_elementwise : t -> bool
(** Unary/binary/clip/cast/where — operators that map index-space to
    index-space one-to-one (modulo broadcast), the most fusion-friendly
    class. *)

val is_activation : t -> bool
(** Cheap unary nonlinearities typically fused into a preceding heavy op. *)

val is_heavy : t -> bool
(** Compute-dominant operators (convolutions, matmul, gemm) that anchor
    fusion groups and are candidates for multi-version codegen. *)

val is_control_flow : t -> bool

val pp : Format.formatter -> t -> unit
