lib/frameworks/framework.mli: Executor Graph Pipeline Profile
