lib/frameworks/framework.ml: Array Cost_model Exec_plan Executor Float Fusion Graph Hashtbl List Mem_plan Multi_version Option Pipeline Profile Rdp Shape
