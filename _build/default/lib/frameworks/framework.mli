(** Simulators of the DNN execution frameworks the paper compares against
    (§2, §5), each reduced to the {e mechanism} the paper identifies as its
    cost driver, executing the same graphs through the same runtime:

    - {b SoD²} — this repository's pipeline: compile once (RDP + fusion +
      execution planning), per-inference symbolic memory-plan
      instantiation, multi-version kernels, selected-branch control flow.
    - {b MNN} — static-model engine: re-initialization (shape propagation
      + layout selection, schedule tuning, full arena re-allocation) every
      time the input shape changes; tuned kernels; greedy first-fit
      memory; execute-all-paths control flow.
    - {b ONNX Runtime} — native dynamic-shape support (no re-init), per-op
      runtime shape inference, BFC-style pooled allocation with power-of-2
      size binning (the memory overhead driver), generic kernels,
      execute-all-paths.
    - {b TVM + Nimble} — VM with runtime shape functions per operator and
      per-tensor dynamic allocation with no cross-operator reuse, plus the
      resident RPC-application overhead the paper calls out; minimal
      fusion; execute-all-paths.
    - {b TFLite} — re-initialization plus a conservative arena sized for
      the maximum declared input; used by the paper only for fixed-shape
      comparisons and the equal-memory-budget study (XLA-style
      rematerialization under a budget).
    - {b DNNFusion} — the static baseline SoD² extends: full optimization
      with shapes and control flow frozen (Fig. 12).

    The support matrix ({!supports}) mirrors the '-' cells of Tables 5
    and 6. *)

type kind =
  | Sod2_fw
  | Mnn
  | Ort
  | Tvm_nimble
  | Tflite
  | Dnnfusion

val kind_name : kind -> string
val all_kinds : kind list

val supports : kind -> model:string -> Profile.target -> bool
(** Whether the framework runs the given zoo model on the target — the
    '-' cells of Tables 5 and 6. *)

type breakdown = {
  shape_pass_us : float;  (** SL: shape propagation + layout selection *)
  tuning_us : float;  (** ST: schedule and tuning *)
  alloc_us : float;  (** memory allocation *)
  infer_us : float;  (** kernel execution *)
}

type stats = {
  latency_us : float;
      (** steady-state inference latency, including per-inference overheads
          (runtime shape functions, dynamic allocation, plan
          instantiation) but not per-shape-change re-initialization *)
  peak_bytes : int;  (** intermediate-result memory *)
  bd : breakdown;
  reinit_us : float;
      (** re-initialization cost paid on this run (MNN/TFLite on a shape
          change) — the Table 1 overhead, reported separately exactly as
          the paper separates it *)
  reinitialized : bool;
}

type session

val create :
  ?seed:int -> kind -> Profile.t -> Graph.t ->
  max_dims:(Graph.tensor_id * int list) list -> session
(** Build a session (the one-time compile).  [max_dims] is the largest
    declared input extent — TFLite sizes its conservative arena with it. *)

val run :
  ?control:Executor.control -> session ->
  input_dims:(Graph.tensor_id * int list) list ->
  gate:(Graph.tensor_id -> int) -> stats
(** Simulate one inference.  Sessions are stateful: a shape change
    triggers re-initialization for the frameworks that need it, and pooled
    allocators retain their high-water marks.  [control] overrides the
    framework's native control-flow strategy (used by the
    same-execution-path study of Fig. 9, which disables SoD²'s branch
    selection). *)

val run_with_budget :
  session -> budget_bytes:int -> input_dims:(Graph.tensor_id * int list) list ->
  gate:(Graph.tensor_id -> int) -> stats
(** Like {!run} but capping memory at [budget_bytes]; frameworks exceeding
    it pay an XLA-style rematerialization latency penalty proportional to
    the deficit (Fig. 11's setup). *)

val compiled : session -> Pipeline.compiled

val create_sod2_with_flags :
  Pipeline.opt_flags -> Profile.t -> Graph.t -> session
(** A SoD² session compiled with a subset of the optimizations — the
    ablation configurations of Figs. 5 and 6 ([Pipeline.no_opts] is the
    paper's "No opt" baseline, which still performs the general static
    optimizations). *)
