type kind =
  | Sod2_fw
  | Mnn
  | Ort
  | Tvm_nimble
  | Tflite
  | Dnnfusion

let kind_name = function
  | Sod2_fw -> "SoD2"
  | Mnn -> "MNN"
  | Ort -> "ORT"
  | Tvm_nimble -> "TVM-N"
  | Tflite -> "TFLite"
  | Dnnfusion -> "DNNFusion"

let all_kinds = [ Ort; Mnn; Tvm_nimble; Tflite; Dnnfusion; Sod2_fw ]

(* The '-' cells of Tables 5 and 6. *)
let supports kind ~model (target : Profile.target) =
  match kind with
  | Sod2_fw | Dnnfusion -> true
  | Mnn -> (
    model <> "segment-anything"
    && match target with Profile.Gpu -> model <> "codebert" | Profile.Cpu -> true)
  | Ort -> (
    match target with
    | Profile.Cpu -> model <> "segment-anything" && model <> "conformer"
    | Profile.Gpu ->
      List.mem model [ "stable-diffusion-encoder"; "yolov6"; "dgnet" ])
  | Tvm_nimble -> (
    match target with
    | Profile.Cpu -> List.mem model [ "yolov6"; "skipnet"; "convnet-aig"; "blockdrop" ]
    | Profile.Gpu -> false)
  | Tflite -> true (* fixed-shape studies only; the harness restricts its use *)

type breakdown = {
  shape_pass_us : float;
  tuning_us : float;
  alloc_us : float;
  infer_us : float;
}

type stats = {
  latency_us : float;
  peak_bytes : int;
  bd : breakdown;
  reinit_us : float;
  reinitialized : bool;
}

type session = {
  fw : kind;
  profile : Profile.t;
  c : Pipeline.compiled;
  n_nodes : int;
  tflite_arena : int;  (** conservative max-shape arena *)
  dynamic_tids : (Graph.tensor_id, unit) Hashtbl.t;
      (** tensors whose size is execution determined (runtime mallocs) *)
  mutable last_dims : (Graph.tensor_id * int list) list option;
  mutable pool_high_water : int;  (** ORT: persistent pool size *)
  mutable last_trace : Executor.trace option;
}

let static_flags =
  { Pipeline.fusion = false; sep = false; dmp = false; mvc = false }

(* MNN and TFLite re-initialize on every shape change, at which point all
   shapes are concrete — so their fusion is as comprehensive as a static
   compiler's.  ORT keeps the graph dynamic and only applies the fusions
   that survive unknown shapes. *)
let reinit_flags =
  { Pipeline.fusion = true; sep = false; dmp = false; mvc = false }

let with_fusion_mode mode base g =
  let fusion_plan =
    match mode with
    | None -> Fusion.identity_plan g
    | Some m -> Fusion.plan ~mode:m g base.Pipeline.rdp
  in
  let env = Pipeline.plan_env base 64 in
  let exec =
    Exec_plan.plan ~strategy:Exec_plan.Topological g base.Pipeline.rdp fusion_plan ~env
  in
  { base with Pipeline.fusion_plan; exec }

let compile_variant kind profile g =
  match kind with
  | Sod2_fw | Dnnfusion -> Pipeline.compile profile g
  | Mnn | Tflite ->
    (* epilogue-level fusion on the concrete post-reinit shapes *)
    let base = Pipeline.compile ~flags:reinit_flags profile g in
    with_fusion_mode (Some Fusion.Light) base g
  | Ort -> Pipeline.compile ~flags:static_flags profile g
  | Tvm_nimble ->
    (* Nimble: VM interpretation, no cross-operator fusion, serialization
       order, untuned kernels. *)
    let base = Pipeline.compile ~flags:static_flags profile g in
    let c = with_fusion_mode None base g in
    { c with Pipeline.versions = Multi_version.untuned }

let control_of = function
  | Sod2_fw | Dnnfusion -> Executor.Selected_only
  | Mnn | Ort | Tvm_nimble | Tflite -> Executor.All_paths

(* Kernel quality: SoD² picks the shape class's tuned version at run time;
   DNNFusion additionally tunes for the one exact static shape; MNN tunes
   at (re-)initialization for the current shape; the rest ship generic
   kernels of varying quality. *)
let heavy_efficiency session ~m ~n ~k =
  let p = session.profile in
  let gpu = p.Profile.target = Profile.Gpu in
  match session.fw with
  | Sod2_fw -> Multi_version.efficiency_for p session.c.Pipeline.versions ~m ~n ~k
  | Dnnfusion ->
    Float.min 0.95
      (Multi_version.efficiency_for p session.c.Pipeline.versions ~m ~n ~k *. 1.05)
  (* the baselines' mobile-GPU kernels lag their CPU ones much more than
     SoD2's tuned versions do — the paper's GPU gaps are wider across the
     board (Table 6: 3.9x/2.3x vs 2.5x/1.7x) *)
  | Mnn -> if gpu then 0.45 else 0.64
  | Tflite -> if gpu then 0.44 else 0.64
  | Ort -> if gpu then 0.32 else 0.50
  | Tvm_nimble -> 0.53

let light_efficiency = 0.80

let infer_time_us session (trace : Executor.trace) =
  List.fold_left
    (fun acc (ge : Executor.group_exec) ->
      let efficiency =
        match ge.gemm with
        | Some (m, n, k) -> heavy_efficiency session ~m ~n ~k
        | None -> light_efficiency
      in
      acc
      +. Cost_model.group_time_us session.profile ~efficiency ge.ops
           ~external_bytes:ge.external_bytes)
    0.0 trace.Executor.steps

let event_lifetimes (trace : Executor.trace) =
  List.map
    (fun (e : Executor.tensor_event) -> e.te_bytes, e.te_alloc, e.te_free)
    trace.Executor.events

let round_pow2 bytes =
  (* BFC-style size binning: round up to the next power of two above 1 KiB. *)
  if bytes <= 1024 then 1024
  else
    let rec go p = if p >= bytes then p else go (p * 2) in
    go 1024

(* MNN's allocator, as the paper describes it (§4.4.1): a pool of slots
   where an allocation takes the smallest free slot that can hold the
   tensor — consuming the whole slot, without splitting — or opens a new
   slot.  Larger-than-needed reuse is the mechanism behind its ~1.16x gap
   to the optimal packing. *)
let slot_pool_bytes lifetimes =
  (* events sorted by time: (step, Alloc i | Free i) *)
  let arr = Array.of_list lifetimes in
  let events = ref [] in
  Array.iteri
    (fun i (b, f, l) ->
      if b > 0 then begin
        events := (f, 0, i) :: !events;
        events := (l + 1, 1, i) :: !events
      end)
    arr;
  let events = List.sort compare !events in
  let free_slots = ref [] in
  (* multiset of free slot sizes *)
  let slot_of = Hashtbl.create 32 in
  let total = ref 0 in
  List.iter
    (fun (_, kind, i) ->
      let size, _, _ = arr.(i) in
      if kind = 0 then begin
        (* allocate: smallest free slot that fits, else a new slot *)
        let fitting = List.filter (fun s -> s >= size) !free_slots in
        match List.sort compare fitting with
        | best :: _ ->
          let removed = ref false in
          free_slots :=
            List.filter
              (fun s ->
                if (not !removed) && s = best then begin
                  removed := true;
                  false
                end
                else true)
              !free_slots;
          Hashtbl.replace slot_of i best
        | [] ->
          total := !total + size;
          Hashtbl.replace slot_of i size
      end
      else
        match Hashtbl.find_opt slot_of i with
        | Some slot ->
          Hashtbl.remove slot_of i;
          free_slots := slot :: !free_slots
        | None -> ())
    events;
  !total

(* Caching size-class pool (Nimble-style dynamic allocation): a freed block
   is only reused by a later tensor of the same power-of-two size class, so
   the pool holds [class size × max simultaneous blocks] per class. *)
let size_class_pool_bytes lifetimes =
  let classes = Hashtbl.create 16 in
  List.iter
    (fun (b, f, l) ->
      let cls = round_pow2 b in
      let existing = Option.value ~default:[] (Hashtbl.find_opt classes cls) in
      Hashtbl.replace classes cls ((f, l) :: existing))
    lifetimes;
  Hashtbl.fold
    (fun cls spans acc ->
      let max_step = List.fold_left (fun m (_, l) -> max m l) 0 spans in
      let peak = ref 0 in
      for s = 0 to max_step do
        let live = List.length (List.filter (fun (f, l) -> f <= s && s <= l) spans) in
        if live > !peak then peak := live
      done;
      acc + (cls * !peak))
    classes 0

(* The paper attributes part of TVM-N's footprint to running as its own
   Android RPC application; the constant here is scaled to this
   repository's reduced model widths so the ratio, not the absolute
   megabytes, is preserved. *)
let tvm_rpc_overhead_bytes = 4 * 1024 * 1024

let peak_memory session (trace : Executor.trace) =
  let lifetimes = event_lifetimes trace in
  match session.fw with
  | Sod2_fw | Dnnfusion ->
    let strategy =
      if session.c.Pipeline.flags.Pipeline.dmp then Mem_plan.Peak_first
      else Mem_plan.Greedy_first_fit
    in
    Mem_plan.arena_for strategy ~lifetimes
  | Mnn -> slot_pool_bytes lifetimes
  | Ort ->
    let binned = List.map (fun (b, f, l) -> round_pow2 b, f, l) lifetimes in
    Mem_plan.arena_for Mem_plan.Greedy_first_fit ~lifetimes:binned
  | Tvm_nimble -> size_class_pool_bytes lifetimes + tvm_rpc_overhead_bytes
  | Tflite -> session.tflite_arena

let alloc_cost_us session (trace : Executor.trace) ~reinit ~peak =
  let p = session.profile in
  match session.fw with
  | Sod2_fw ->
    (* static plan instantiation is a linear pass; nac tensors are true
       runtime allocations *)
    let n_static = List.length trace.Executor.events in
    let dynamic =
      List.filter
        (fun (e : Executor.tensor_event) ->
          Hashtbl.mem session.dynamic_tids e.Executor.te_tid)
        trace.Executor.events
    in
    (0.3 *. float_of_int n_static)
    +. List.fold_left
         (fun acc (e : Executor.tensor_event) ->
           acc +. Cost_model.malloc_time_us p ~bytes:e.Executor.te_bytes)
         0.0 dynamic
  | Dnnfusion -> 0.2 *. float_of_int (List.length trace.Executor.events)
  | Mnn | Tflite ->
    if reinit then Cost_model.malloc_time_us p ~bytes:peak else 0.0
  | Ort ->
    (* BFC pool: pay allocation only when the pool grows *)
    let growth = max 0 (peak - session.pool_high_water) in
    session.pool_high_water <- max session.pool_high_water peak;
    if growth > 0 then Cost_model.malloc_time_us p ~bytes:growth
    else 5.0 *. float_of_int (List.length trace.Executor.events)
  | Tvm_nimble ->
    List.fold_left
      (fun acc (e : Executor.tensor_event) ->
        acc +. Cost_model.malloc_time_us p ~bytes:e.Executor.te_bytes)
      0.0 trace.Executor.events

let create ?seed:_ kind profile g ~max_dims =
  let c = compile_variant kind profile g in
  let dynamic_tids = Hashtbl.create 16 in
  List.iter
    (fun tid ->
      if not (Shape.is_symbolically_known (Rdp.shape c.Pipeline.rdp tid)) then
        Hashtbl.replace dynamic_tids tid ())
    (Fusion.materialized_tensors g c.Pipeline.fusion_plan);
  let session =
    {
      fw = kind;
      profile;
      c;
      n_nodes = Graph.node_count g;
      tflite_arena = 0;
      dynamic_tids;
      last_dims = None;
      pool_high_water = 0;
      last_trace = None;
    }
  in
  (* TFLite's conservative arena: place the max-shape trace greedily. *)
  let tflite_arena =
    if kind = Tflite then begin
      let trace =
        Executor.run_dry ~control:Executor.All_paths c ~input_dims:max_dims
      in
      Mem_plan.arena_for Mem_plan.Greedy_first_fit ~lifetimes:(event_lifetimes trace)
    end
    else 0
  in
  { session with tflite_arena }

let compiled s = s.c

let create_sod2_with_flags flags profile g =
  let c = Pipeline.compile ~flags profile g in
  let dynamic_tids = Hashtbl.create 16 in
  List.iter
    (fun tid ->
      if not (Shape.is_symbolically_known (Rdp.shape c.Pipeline.rdp tid)) then
        Hashtbl.replace dynamic_tids tid ())
    (Fusion.materialized_tensors g c.Pipeline.fusion_plan);
  {
    fw = Sod2_fw;
    profile;
    c;
    n_nodes = Graph.node_count g;
    tflite_arena = 0;
    dynamic_tids;
    last_dims = None;
    pool_high_water = 0;
    last_trace = None;
  }

let run ?control session ~input_dims ~gate =
  let control = Option.value control ~default:(control_of session.fw) in
  let p = session.profile in
  let reinit =
    match session.fw, session.last_dims with
    | (Mnn | Tflite), Some prev -> prev <> input_dims
    | (Mnn | Tflite), None -> true
    | (Sod2_fw | Ort | Tvm_nimble | Dnnfusion), _ -> false
  in
  session.last_dims <- Some input_dims;
  let trace = Executor.run_dry ~control ~gate session.c ~input_dims in
  session.last_trace <- Some trace;
  let peak = peak_memory session trace in
  (* Latency couples to the footprint: a larger working set spills the
     cache more often, which is how execution planning and memory planning
     buy latency and not only bytes (Fig. 6). *)
  let pressure =
    1.0
    +. p.Profile.pressure_coeff
       *. (log (1.0 +. (float_of_int peak /. float_of_int p.Profile.cache_bytes))
          /. log 2.0)
  in
  let infer_us = infer_time_us session trace *. pressure in
  let shape_pass_us =
    match session.fw with
    | Sod2_fw | Dnnfusion -> 0.0
    | Mnn | Tflite ->
      if reinit then p.reinit_shape_pass_us_per_op *. float_of_int session.n_nodes
      else 0.0
    | Ort -> 8.0 *. float_of_int trace.Executor.nodes_executed
    | Tvm_nimble -> p.shape_fn_us *. float_of_int trace.Executor.nodes_executed
  in
  let tuning_us =
    match session.fw with
    | (Mnn | Tflite) when reinit ->
      p.reinit_tuning_us_per_op *. float_of_int session.n_nodes
    | _ -> 0.0
  in
  let alloc_us = alloc_cost_us session trace ~reinit ~peak in
  (* For the re-initializing frameworks, SL/ST/Alloc are a per-shape-change
     setup cost, reported separately (Table 1); steady-state latency
     (Tables 6/7, Figs 9–13) is the execution time plus any truly
     per-inference overheads. *)
  let reinit_us, steady_us =
    match session.fw with
    | Mnn | Tflite -> shape_pass_us +. tuning_us +. alloc_us, infer_us
    | Sod2_fw | Ort | Tvm_nimble | Dnnfusion ->
      0.0, shape_pass_us +. tuning_us +. alloc_us +. infer_us
  in
  {
    latency_us = steady_us;
    peak_bytes = peak;
    bd = { shape_pass_us; tuning_us; alloc_us; infer_us };
    reinit_us;
    reinitialized = reinit;
  }

let run_with_budget session ~budget_bytes ~input_dims ~gate =
  let stats = run session ~input_dims ~gate in
  if stats.peak_bytes <= budget_bytes then stats
  else begin
    (* XLA-style rematerialization: staying under the budget forces
       recomputation roughly proportional to the memory deficit. *)
    let deficit =
      float_of_int stats.peak_bytes /. float_of_int (max 1 budget_bytes) -. 1.0
    in
    (* recomputation cost saturates: even an aggressive rematerialization
       schedule at most re-executes the forward pass a couple of times *)
    let remat_factor = Float.min 3.2 (1.0 +. (0.9 *. deficit)) in
    let infer_us = stats.bd.infer_us *. remat_factor in
    {
      stats with
      latency_us = stats.latency_us -. stats.bd.infer_us +. infer_us;
      peak_bytes = budget_bytes;
      bd = { stats.bd with infer_us };
    }
  end
