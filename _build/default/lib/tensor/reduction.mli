(** Reduction and search kernels: axis reductions, argmax/argmin, softmax,
    normalizations, top-k, non-zero and cumulative sum.  Semantics follow
    the ONNX operator specifications. *)

type kind =
  | Sum
  | Mean
  | Max
  | Min
  | Prod
  | L2

val reduce : kind -> Tensor.t -> axes:int list -> keepdims:bool -> Tensor.t
(** Reduce the given axes; [axes = []] reduces all axes. *)

val argmax : Tensor.t -> axis:int -> keepdims:bool -> Tensor.t
(** Integer tensor of indices of the (first) maximum along [axis]. *)

val argmin : Tensor.t -> axis:int -> keepdims:bool -> Tensor.t

val softmax : Tensor.t -> axis:int -> Tensor.t
(** Numerically-stable softmax along [axis]. *)

val log_softmax : Tensor.t -> axis:int -> Tensor.t

val layer_norm : Tensor.t -> gamma:Tensor.t -> beta:Tensor.t -> eps:float -> Tensor.t
(** Normalization over the last axis. *)

val batch_norm :
  Tensor.t -> scale:Tensor.t -> bias:Tensor.t -> mean:Tensor.t -> var:Tensor.t ->
  eps:float -> Tensor.t
(** Inference-mode batch normalization over the channel axis (axis 1). *)

val group_norm : Tensor.t -> groups:int -> gamma:Tensor.t -> beta:Tensor.t ->
  eps:float -> Tensor.t

val top_k : Tensor.t -> k:int -> axis:int -> largest:bool -> Tensor.t * Tensor.t
(** [(values, indices)] of the [k] largest (or smallest) elements along
    [axis], sorted. *)

val nonzero : Tensor.t -> Tensor.t
(** ONNX [NonZero]: integer tensor of shape [rank × count] holding the
    multi-indices of non-zero elements in row-major order. *)

val cumsum : Tensor.t -> axis:int -> Tensor.t
