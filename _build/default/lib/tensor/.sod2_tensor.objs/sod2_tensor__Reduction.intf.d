lib/tensor/reduction.mli: Tensor
