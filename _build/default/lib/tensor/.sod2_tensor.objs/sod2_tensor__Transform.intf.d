lib/tensor/transform.mli: Tensor
