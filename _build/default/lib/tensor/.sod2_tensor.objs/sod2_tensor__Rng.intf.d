lib/tensor/rng.mli:
