lib/tensor/linalg.ml: Array List Option Printf Tensor
