lib/tensor/reduction.ml: Array Float Fun List Tensor
