lib/tensor/transform.ml: Array Fun List Tensor
