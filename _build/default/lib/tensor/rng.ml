type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let uniform t =
  (* 53 high-quality bits into [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let float t bound = uniform t *. bound

let normal t =
  let u1 = Float.max 1e-12 (uniform t) in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t p = uniform t < p

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
