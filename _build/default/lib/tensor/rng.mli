(** Deterministic pseudo-random number generator (splitmix64).  All
    randomness in the repository — weights, input samples, gate outcomes,
    auto-tuner mutation — flows through explicitly seeded instances of this
    generator, so every experiment is reproducible bit-for-bit. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator stream; [t] advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val normal : t -> float
(** Standard normal variate (Box–Muller). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniformly chosen element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
