(** Layout- and index-transforming kernels: transpose, slice, concat, split,
    gather, pad, tile, resize, one-hot, range, where.  Semantics follow the
    ONNX operator specifications. *)

val transpose : Tensor.t -> int list -> Tensor.t
(** [transpose t perm] permutes axes; [perm] must be a permutation of
    [0 .. rank-1]. *)

val slice :
  Tensor.t -> starts:int list -> ends:int list -> axes:int list ->
  ?steps:int list -> unit -> Tensor.t
(** ONNX [Slice] with clamping of out-of-range bounds and negative
    indices. *)

val concat : Tensor.t list -> axis:int -> Tensor.t

val split : Tensor.t -> axis:int -> sizes:int list -> Tensor.t list

val gather : Tensor.t -> indices:Tensor.t -> axis:int -> Tensor.t
(** ONNX [Gather]: output rank = rank(data) - 1 + rank(indices); negative
    indices count from the end of the gathered axis. *)

val pad : Tensor.t -> before:int list -> after:int list -> value:float -> Tensor.t

val tile : Tensor.t -> repeats:int list -> Tensor.t

val resize_nearest : Tensor.t -> out_spatial:int list -> Tensor.t
(** Nearest-neighbour resize of the trailing spatial axes of an NCHW (or
    NCW) tensor. *)

val where : Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t
(** [where cond a b]: elementwise select with broadcasting; [cond] is an
    integer mask. *)

val one_hot : Tensor.t -> depth:int -> Tensor.t
(** Indices → one-hot float tensor with a trailing [depth] axis. *)

val range : start:int -> limit:int -> delta:int -> Tensor.t
(** 1-d integer tensor [start, start+delta, …) strictly before [limit]. *)

val depth_to_space : Tensor.t -> block:int -> Tensor.t
(** ONNX [DepthToSpace] (DCR mode) on NCHW. *)

val space_to_depth : Tensor.t -> block:int -> Tensor.t
