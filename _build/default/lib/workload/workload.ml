type sample = {
  idx : int;
  env : Env.t;
  gate : Graph.tensor_id -> int;
}

(* Deterministic gate outcome from (seed, sample, predicate tensor). *)
let make_gate ~seed ~idx ~gate_prob tid =
  let rng = Rng.create ((seed * 1000003) lxor (idx * 7919) lxor (tid * 104729)) in
  if Rng.bool rng gate_prob then 1 else 0

let samples ?(n = 50) ?(seed = 2024) ?(gate_prob = 0.5) spec =
  let rng = Rng.create seed in
  List.init n (fun idx ->
      let env = Zoo.sample_env spec rng in
      { idx; env; gate = make_gate ~seed ~idx ~gate_prob })

let sample_at ?(seed = 2024) ?(gate_prob = 0.5) spec ~percentile ~idx =
  {
    idx;
    env = Zoo.percentile_env spec percentile;
    gate = make_gate ~seed ~idx ~gate_prob;
  }

let ascending_sizes ?(n = 15) ?(seed = 2024) spec =
  let raw =
    List.init n (fun idx ->
        let p = if n <= 1 then 0.0 else float_of_int idx /. float_of_int (n - 1) in
        {
          idx;
          env = Zoo.percentile_env spec p;
          gate = make_gate ~seed ~idx ~gate_prob:0.5;
        })
  in
  (* percentile rounding can repeat a size; keep each distinct extent once *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun sm ->
      let key = Env.to_list sm.env in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    raw

let fixed_gates branch _tid = branch
