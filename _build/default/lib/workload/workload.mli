(** Input-sample generation for the evaluation harness.

    The paper evaluates each model on 50 randomly-selected validation
    inputs whose extents span the ranges of §5.1.  Here a {!sample} is a
    valuation of the model's shape variables plus a deterministic gate
    function standing in for the input-dependent branch decisions of the
    control-flow models: gate outcomes are drawn from a hash of
    (generator seed, sample index, predicate tensor), so every run of
    every experiment sees the same "inputs". *)

type sample = {
  idx : int;
  env : Env.t;  (** shape-variable valuation *)
  gate : Graph.tensor_id -> int;  (** branch decision per predicate tensor *)
}

val samples :
  ?n:int -> ?seed:int -> ?gate_prob:float -> Zoo.spec -> sample list
(** [samples spec] draws [n] (default 50) input samples with extents
    uniform over the model's admissible values; [gate_prob] (default 0.5)
    is the probability a gate takes the expensive branch. *)

val sample_at :
  ?seed:int -> ?gate_prob:float -> Zoo.spec -> percentile:float -> idx:int -> sample
(** Deterministic sample at a size percentile (Table 7's setup). *)

val ascending_sizes : ?n:int -> ?seed:int -> Zoo.spec -> sample list
(** [n] (default 15) samples with sizes increasing from the minimum to the
    maximum of the range — Fig. 10's sweep. *)

val fixed_gates : int -> Graph.tensor_id -> int
(** A gate function that always picks the given branch — used when
    control-flow dynamism is disabled (Fig. 9, Fig. 12). *)
