lib/workload/workload.mli: Env Graph Zoo
