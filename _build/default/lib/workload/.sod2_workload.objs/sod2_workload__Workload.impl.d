lib/workload/workload.ml: Env Graph Hashtbl List Rng Zoo
