(* Tests for the tensor substrate: representation, kernels, transforms and
   reductions, with hand-computed references and algebraic properties. *)

let t_f dims data = Tensor.create_f dims (Array.of_list data)

let check_tensor msg expected actual =
  if not (Tensor.approx_equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

let test_creation () =
  let t = Tensor.zeros Tensor.F32 [ 2; 3 ] in
  Alcotest.(check int) "numel" 6 (Tensor.numel t);
  Alcotest.(check int) "rank" 2 (Tensor.rank t);
  Alcotest.(check int) "bytes" 24 (Tensor.byte_size t);
  Alcotest.check_raises "size mismatch" (Invalid_argument "Tensor: shape wants 4 elements, data has 3")
    (fun () -> ignore (Tensor.create_f [ 2; 2 ] [| 1.; 2.; 3. |]));
  let s = Tensor.scalar_f 3.5 in
  Alcotest.(check int) "scalar rank" 0 (Tensor.rank s)

let test_indexing () =
  let t = t_f [ 2; 3 ] [ 0.; 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 0.0)) "get" 5.0 (Tensor.get_f t [| 1; 2 |]);
  Alcotest.(check (list int)) "strides" [ 3; 1 ] (Array.to_list (Tensor.strides t));
  Alcotest.(check int) "ravel" 5 (Tensor.ravel [| 2; 3 |] [| 1; 2 |]);
  Alcotest.(check (list int)) "unravel" [ 1; 2 ] (Array.to_list (Tensor.unravel [| 2; 3 |] 5))

let test_broadcast () =
  let a = t_f [ 2; 1 ] [ 1.; 2. ] in
  let b = t_f [ 1; 3 ] [ 10.; 20.; 30. ] in
  let s = Tensor.map2 ( +. ) a b in
  check_tensor "outer add" (t_f [ 2; 3 ] [ 11.; 21.; 31.; 12.; 22.; 32. ]) s;
  let bt = Tensor.broadcast_to a [ 2; 3 ] in
  check_tensor "broadcast_to" (t_f [ 2; 3 ] [ 1.; 1.; 1.; 2.; 2.; 2. ]) bt;
  Alcotest.check_raises "incompatible"
    (Invalid_argument "Tensor.broadcast_dims: 2 vs 3 at axis 0") (fun () ->
      ignore (Tensor.broadcast_dims [| 2 |] [| 3 |]))

let test_matmul () =
  let a = t_f [ 2; 3 ] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let b = t_f [ 3; 2 ] [ 7.; 8.; 9.; 10.; 11.; 12. ] in
  check_tensor "2x3 @ 3x2" (t_f [ 2; 2 ] [ 58.; 64.; 139.; 154. ]) (Linalg.matmul a b);
  (* batched with broadcast *)
  let a3 = Tensor.reshape (Tensor.broadcast_to (Tensor.reshape a [ 1; 2; 3 ]) [ 4; 2; 3 ]) [ 4; 2; 3 ] in
  let out = Linalg.matmul a3 b in
  Alcotest.(check (list int)) "batched dims" [ 4; 2; 2 ] (Tensor.dims out);
  (* 1-d promotion *)
  let v = t_f [ 3 ] [ 1.; 0.; 1. ] in
  check_tensor "mat @ vec" (t_f [ 2 ] [ 4.; 10. ]) (Linalg.matmul a v);
  check_tensor "vec @ mat" (t_f [ 2 ] [ 18.; 20. ]) (Linalg.matmul v b)

let test_gemm () =
  let a = t_f [ 2; 2 ] [ 1.; 2.; 3.; 4. ] in
  let b = t_f [ 2; 2 ] [ 5.; 6.; 7.; 8. ] in
  let c = t_f [ 2 ] [ 100.; 200. ] in
  check_tensor "alpha/beta/bias"
    (t_f [ 2; 2 ] [ 138.; 244.; 186.; 300. ])
    (Linalg.gemm ~alpha:2.0 ~beta:1.0 a b (Some c));
  check_tensor "trans_b"
    (t_f [ 2; 2 ] [ 17.; 23.; 39.; 53. ])
    (Linalg.gemm ~trans_b:true a b None)

let test_conv2d () =
  (* 1x1x3x3 input, 1x1x2x2 kernel of ones: sliding sums *)
  let x = t_f [ 1; 1; 3; 3 ] [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. ] in
  let w = Tensor.full_f [ 1; 1; 2; 2 ] 1.0 in
  check_tensor "valid conv"
    (t_f [ 1; 1; 2; 2 ] [ 12.; 16.; 24.; 28. ])
    (Linalg.conv2d x w None);
  (* stride 2, pad 1 *)
  let out = Linalg.conv2d ~stride:(2, 2) ~pad:(1, 1, 1, 1) x w None in
  check_tensor "strided padded"
    (t_f [ 1; 1; 2; 2 ] [ 1.; 5.; 11.; 28. ])
    out;
  (* bias and channels *)
  let x2 = Tensor.full_f [ 1; 2; 2; 2 ] 1.0 in
  let w2 = Tensor.full_f [ 3; 2; 1; 1 ] 1.0 in
  let b = t_f [ 3 ] [ 0.; 10.; 20. ] in
  let out = Linalg.conv2d x2 w2 (Some b) in
  Alcotest.(check (list int)) "dims" [ 1; 3; 2; 2 ] (Tensor.dims out);
  Alcotest.(check (float 1e-6)) "bias applied" 12.0 (Tensor.get_f out [| 0; 1; 0; 0 |]);
  (* grouped = depthwise *)
  let wd = Tensor.full_f [ 2; 1; 1; 1 ] 2.0 in
  let out = Linalg.conv2d ~groups:2 x2 wd None in
  Alcotest.(check (float 1e-6)) "depthwise" 2.0 (Tensor.get_f out [| 0; 1; 1; 1 |])

let test_conv1d () =
  let x = t_f [ 1; 1; 4 ] [ 1.; 2.; 3.; 4. ] in
  let w = Tensor.full_f [ 1; 1; 2 ] 1.0 in
  let out = Linalg.conv1d x w None in
  Alcotest.(check (list int)) "dims" [ 1; 1; 3 ] (Tensor.dims out);
  Alcotest.(check (float 1e-6)) "sliding sum" 5.0 (Tensor.get_f out [| 0; 0; 1 |])

let test_pooling () =
  let x = t_f [ 1; 1; 2; 2 ] [ 1.; 2.; 3.; 4. ] in
  check_tensor "max" (t_f [ 1; 1; 1; 1 ] [ 4. ]) (Linalg.max_pool2d ~kernel:(2, 2) x);
  check_tensor "avg" (t_f [ 1; 1; 1; 1 ] [ 2.5 ]) (Linalg.avg_pool2d ~kernel:(2, 2) x);
  (* padding excluded from the average divisor *)
  let out = Linalg.avg_pool2d ~kernel:(2, 2) ~stride:(2, 2) ~pad:(1, 1, 0, 0) x in
  Alcotest.(check (float 1e-6)) "count_include_pad=0" 1.0 (Tensor.get_f out [| 0; 0; 0; 0 |]);
  check_tensor "global"
    (t_f [ 1; 1; 1; 1 ] [ 2.5 ])
    (Linalg.global_avg_pool x)

let test_reductions () =
  let x = t_f [ 2; 3 ] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  check_tensor "sum axis1 keep" (t_f [ 2; 1 ] [ 6.; 15. ])
    (Reduction.reduce Reduction.Sum x ~axes:[ 1 ] ~keepdims:true);
  check_tensor "mean axis0" (t_f [ 3 ] [ 2.5; 3.5; 4.5 ])
    (Reduction.reduce Reduction.Mean x ~axes:[ 0 ] ~keepdims:false);
  check_tensor "max all" (Tensor.scalar_f 6.)
    (Reduction.reduce Reduction.Max x ~axes:[] ~keepdims:false);
  check_tensor "prod axis1" (t_f [ 2 ] [ 6.; 120. ])
    (Reduction.reduce Reduction.Prod x ~axes:[ 1 ] ~keepdims:false);
  Alcotest.(check (list int)) "argmax" [ 2; 2 ]
    (Tensor.to_int_list (Reduction.argmax x ~axis:1 ~keepdims:false));
  Alcotest.(check (list int)) "argmin axis0" [ 0; 0; 0 ]
    (Tensor.to_int_list (Reduction.argmin x ~axis:0 ~keepdims:false))

let test_softmax_norms () =
  let x = t_f [ 2; 3 ] [ 1.; 2.; 3.; 1.; 1.; 1. ] in
  let s = Reduction.softmax x ~axis:1 in
  let sums = Reduction.reduce Reduction.Sum s ~axes:[ 1 ] ~keepdims:false in
  check_tensor "softmax sums to 1" (t_f [ 2 ] [ 1.; 1. ]) sums;
  Alcotest.(check (float 1e-5)) "uniform row" (1.0 /. 3.0) (Tensor.get_f s [| 1; 0 |]);
  (* layer norm: zero mean, unit variance before affine *)
  let g = Tensor.full_f [ 3 ] 1.0 and be = Tensor.full_f [ 3 ] 0.0 in
  let ln = Reduction.layer_norm x ~gamma:g ~beta:be ~eps:1e-9 in
  let m = Reduction.reduce Reduction.Mean ln ~axes:[ 1 ] ~keepdims:false in
  Alcotest.(check (float 1e-4)) "ln mean 0" 0.0 (Tensor.get_f m [| 0 |]);
  (* batch norm with identity stats is identity *)
  let x4 = Tensor.reshape x [ 1; 2; 3; 1 ] in
  let ones = Tensor.full_f [ 2 ] 1.0 and zeros = Tensor.full_f [ 2 ] 0.0 in
  let bn = Reduction.batch_norm x4 ~scale:ones ~bias:zeros ~mean:zeros ~var:ones ~eps:0.0 in
  check_tensor "bn identity" x4 bn

let test_transpose () =
  let x = t_f [ 2; 3 ] [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  check_tensor "transpose" (t_f [ 3; 2 ] [ 1.; 4.; 2.; 5.; 3.; 6. ])
    (Transform.transpose x [ 1; 0 ]);
  let x3 = Tensor.reshape x [ 1; 2; 3 ] in
  let r = Transform.transpose (Transform.transpose x3 [ 2; 0; 1 ]) [ 1; 2; 0 ] in
  check_tensor "roundtrip" x3 r

let test_slice () =
  let x = t_f [ 3; 4 ] (List.init 12 float_of_int) in
  let s = Transform.slice x ~starts:[ 1 ] ~ends:[ 3 ] ~axes:[ 0 ] () in
  check_tensor "rows 1..2" (t_f [ 2; 4 ] (List.init 8 (fun i -> float_of_int (i + 4)))) s;
  let s = Transform.slice x ~starts:[ -2 ] ~ends:[ 1000 ] ~axes:[ 1 ] () in
  Alcotest.(check (list int)) "negative start clamps" [ 3; 2 ] (Tensor.dims s);
  let s = Transform.slice x ~starts:[ 0 ] ~ends:[ 4 ] ~axes:[ 1 ] ~steps:[ 2 ] () in
  check_tensor "step 2 row0" (t_f [ 3; 2 ] [ 0.; 2.; 4.; 6.; 8.; 10. ]) s

let test_concat_split () =
  let a = t_f [ 1; 2 ] [ 1.; 2. ] and b = t_f [ 1; 2 ] [ 3.; 4. ] in
  let c = Transform.concat [ a; b ] ~axis:0 in
  check_tensor "concat" (t_f [ 2; 2 ] [ 1.; 2.; 3.; 4. ]) c;
  (match Transform.split c ~axis:0 ~sizes:[ 1; 1 ] with
  | [ x; y ] ->
    check_tensor "split0" a x;
    check_tensor "split1" b y
  | _ -> Alcotest.fail "split arity")

let test_gather () =
  let table = t_f [ 4; 2 ] [ 0.; 1.; 10.; 11.; 20.; 21.; 30.; 31. ] in
  let ix = Tensor.of_int_list [ 2; 0 ] in
  check_tensor "gather rows" (t_f [ 2; 2 ] [ 20.; 21.; 0.; 1. ])
    (Transform.gather table ~indices:ix ~axis:0);
  (* negative index *)
  let ix = Tensor.of_int_list [ -1 ] in
  check_tensor "negative" (t_f [ 1; 2 ] [ 30.; 31. ])
    (Transform.gather table ~indices:ix ~axis:0);
  (* 2-d indices produce higher rank *)
  let ix = Tensor.create_i [ 1; 2 ] [| 1; 3 |] in
  Alcotest.(check (list int)) "rank" [ 1; 2; 2 ]
    (Tensor.dims (Transform.gather table ~indices:ix ~axis:0))

let test_pad_tile_resize () =
  let x = t_f [ 1; 2 ] [ 1.; 2. ] in
  check_tensor "pad" (t_f [ 1; 4 ] [ 9.; 1.; 2.; 9. ])
    (Transform.pad x ~before:[ 0; 1 ] ~after:[ 0; 1 ] ~value:9.0);
  check_tensor "tile" (t_f [ 1; 4 ] [ 1.; 2.; 1.; 2. ]) (Transform.tile x ~repeats:[ 1; 2 ]);
  let img = Tensor.reshape (t_f [ 4 ] [ 1.; 2.; 3.; 4. ]) [ 1; 1; 2; 2 ] in
  let up = Transform.resize_nearest img ~out_spatial:[ 4; 4 ] in
  Alcotest.(check (list int)) "resize dims" [ 1; 1; 4; 4 ] (Tensor.dims up);
  Alcotest.(check (float 1e-6)) "corner" 4.0 (Tensor.get_f up [| 0; 0; 3; 3 |])

let test_where_onehot_range () =
  let c = Tensor.create_i [ 3 ] [| 1; 0; 1 |] in
  let a = t_f [ 3 ] [ 1.; 2.; 3. ] and b = t_f [ 3 ] [ 9.; 9.; 9. ] in
  check_tensor "where" (t_f [ 3 ] [ 1.; 9.; 3. ]) (Transform.where c a b);
  let oh = Transform.one_hot (Tensor.of_int_list [ 2; 0 ]) ~depth:3 in
  check_tensor "one hot" (t_f [ 2; 3 ] [ 0.; 0.; 1.; 1.; 0.; 0. ]) oh;
  Alcotest.(check (list int)) "range" [ 3; 5; 7 ]
    (Tensor.to_int_list (Transform.range ~start:3 ~limit:9 ~delta:2))

let test_topk_nonzero_cumsum () =
  let x = t_f [ 5 ] [ 3.; 1.; 4.; 1.; 5. ] in
  let values, indices = Reduction.top_k x ~k:2 ~axis:0 ~largest:true in
  check_tensor "topk values" (t_f [ 2 ] [ 5.; 4. ]) values;
  Alcotest.(check (list int)) "topk indices" [ 4; 2 ] (Tensor.to_int_list indices);
  let nz = Reduction.nonzero (t_f [ 2; 2 ] [ 0.; 7.; 0.; 8. ]) in
  Alcotest.(check (list int)) "nonzero dims" [ 2; 2 ] (Tensor.dims nz);
  Alcotest.(check (list int)) "nonzero coords" [ 0; 1; 1; 1 ] (Tensor.to_int_list nz);
  check_tensor "cumsum" (t_f [ 4 ] [ 1.; 3.; 6.; 10. ])
    (Reduction.cumsum (t_f [ 4 ] [ 1.; 2.; 3.; 4. ]) ~axis:0)

let test_depth_space () =
  let rng = Rng.create 3 in
  let x = Tensor.rand_uniform rng [ 1; 8; 2; 2 ] in
  let d = Transform.depth_to_space x ~block:2 in
  Alcotest.(check (list int)) "d2s dims" [ 1; 2; 4; 4 ] (Tensor.dims d);
  check_tensor "s2d inverts d2s" x (Transform.space_to_depth d ~block:2)

let test_cast_int () =
  let x = Tensor.of_int_list [ 1; 2; 3 ] in
  let f = Tensor.cast x Tensor.F32 in
  Alcotest.(check (float 0.)) "cast to float" 2.0 (Tensor.get_f f [| 1 |]);
  let back = Tensor.cast f Tensor.I64 in
  Alcotest.(check bool) "roundtrip" true (Tensor.equal x back)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let small_dims = QCheck2.Gen.(list_size (int_range 1 3) (int_range 1 4))

let prop_transpose_involution =
  QCheck2.Test.make ~name:"reversing transpose twice is identity" ~count:100
    QCheck2.Gen.(tup2 small_dims (int_range 0 1000))
    (fun (dims, seed) ->
      let rng = Rng.create seed in
      let t = Tensor.rand_uniform rng dims in
      let r = List.length dims in
      let perm = List.init r (fun i -> r - 1 - i) in
      let back = Transform.transpose (Transform.transpose t perm) perm in
      Tensor.approx_equal t back)

let prop_concat_split_roundtrip =
  QCheck2.Test.make ~name:"split inverts concat" ~count:100
    QCheck2.Gen.(tup3 (int_range 1 4) (int_range 1 4) (int_range 0 1000))
    (fun (n1, n2, seed) ->
      let rng = Rng.create seed in
      let a = Tensor.rand_uniform rng [ n1; 3 ] in
      let b = Tensor.rand_uniform rng [ n2; 3 ] in
      match Transform.split (Transform.concat [ a; b ] ~axis:0) ~axis:0 ~sizes:[ n1; n2 ] with
      | [ x; y ] -> Tensor.approx_equal a x && Tensor.approx_equal b y
      | _ -> false)

let prop_reduce_sum_total =
  QCheck2.Test.make ~name:"axis-wise sums compose to the total sum" ~count:100
    QCheck2.Gen.(tup3 (int_range 1 4) (int_range 1 4) (int_range 0 1000))
    (fun (n1, n2, seed) ->
      let rng = Rng.create seed in
      let t = Tensor.rand_uniform rng [ n1; n2 ] in
      let total = Reduction.reduce Reduction.Sum t ~axes:[] ~keepdims:false in
      let byrows =
        Reduction.reduce Reduction.Sum
          (Reduction.reduce Reduction.Sum t ~axes:[ 1 ] ~keepdims:false)
          ~axes:[] ~keepdims:false
      in
      Tensor.approx_equal ~eps:1e-4 total byrows)

let prop_broadcast_commutes =
  QCheck2.Test.make ~name:"broadcast add commutes" ~count:100
    QCheck2.Gen.(tup2 (int_range 1 4) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let a = Tensor.rand_uniform rng [ n; 1 ] in
      let b = Tensor.rand_uniform rng [ 1; n ] in
      Tensor.approx_equal (Tensor.map2 ( +. ) a b) (Tensor.map2 ( +. ) b a))

let prop_matmul_identity =
  QCheck2.Test.make ~name:"matmul with identity matrix" ~count:50
    QCheck2.Gen.(tup2 (int_range 1 5) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let a = Tensor.rand_uniform rng [ n; n ] in
      let id = Tensor.init_f [ n; n ] (fun ix -> if ix.(0) = ix.(1) then 1.0 else 0.0) in
      Tensor.approx_equal a (Linalg.matmul a id)
      && Tensor.approx_equal a (Linalg.matmul id a))

let suite =
  [
    Alcotest.test_case "creation" `Quick test_creation;
    Alcotest.test_case "indexing" `Quick test_indexing;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "matmul" `Quick test_matmul;
    Alcotest.test_case "gemm" `Quick test_gemm;
    Alcotest.test_case "conv2d" `Quick test_conv2d;
    Alcotest.test_case "conv1d" `Quick test_conv1d;
    Alcotest.test_case "pooling" `Quick test_pooling;
    Alcotest.test_case "reductions" `Quick test_reductions;
    Alcotest.test_case "softmax and norms" `Quick test_softmax_norms;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "slice" `Quick test_slice;
    Alcotest.test_case "concat/split" `Quick test_concat_split;
    Alcotest.test_case "gather" `Quick test_gather;
    Alcotest.test_case "pad/tile/resize" `Quick test_pad_tile_resize;
    Alcotest.test_case "where/onehot/range" `Quick test_where_onehot_range;
    Alcotest.test_case "topk/nonzero/cumsum" `Quick test_topk_nonzero_cumsum;
    Alcotest.test_case "depth<->space" `Quick test_depth_space;
    Alcotest.test_case "casting" `Quick test_cast_int;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
    QCheck_alcotest.to_alcotest prop_concat_split_roundtrip;
    QCheck_alcotest.to_alcotest prop_reduce_sum_total;
    QCheck_alcotest.to_alcotest prop_broadcast_commutes;
    QCheck_alcotest.to_alcotest prop_matmul_identity;
  ]
