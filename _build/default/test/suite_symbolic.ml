(* Tests for the symbolic expression algebra and the RDP value lattice. *)

let check_expr msg expected actual =
  Alcotest.(check string) msg expected (Expr.to_string actual)

let e_int = Expr.const
let h = Expr.sym "H"
let w = Expr.sym "W"

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_const_folding () =
  check_expr "2+3" "5" (Expr.add (e_int 2) (e_int 3));
  check_expr "2*3+1" "7" (Expr.add (Expr.mul (e_int 2) (e_int 3)) (e_int 1));
  check_expr "neg" "-4" (Expr.neg (e_int 4));
  check_expr "sub to zero" "0" (Expr.sub (e_int 7) (e_int 7))

let test_symbolic_normal_form () =
  check_expr "H+H" "2*H" (Expr.add h h);
  check_expr "H*1" "H" (Expr.mul h Expr.one);
  check_expr "H*0" "0" (Expr.mul h Expr.zero);
  check_expr "H+0" "H" (Expr.add h Expr.zero);
  check_expr "commuted sum" "H + W" (Expr.add w h);
  check_expr "H*W = W*H"
    (Expr.to_string (Expr.mul h w))
    (Expr.mul w h);
  check_expr "distribute" "2*H + 2*W" (Expr.mul (e_int 2) (Expr.add h w))

let test_sub_cancellation () =
  Alcotest.(check bool) "H+W-W = H" true (Expr.equal h (Expr.sub (Expr.add h w) w));
  Alcotest.(check bool) "x-x = 0" true (Expr.is_zero (Expr.sub (Expr.mul h w) (Expr.mul w h)))

let test_division () =
  check_expr "exact const" "3" (Expr.div (e_int 7) (e_int 2));
  check_expr "floor negative" "-4" (Expr.div (e_int (-7)) (e_int 2));
  check_expr "4H/2" "2*H" (Expr.div (Expr.mul (e_int 4) h) (e_int 2));
  check_expr "HW/H" "W" (Expr.div (Expr.mul h w) h);
  check_expr "div by one" "H" (Expr.div h Expr.one);
  (* mixed: divisible part splits out of the floor *)
  check_expr "(2H+4)/2" "2 + H" (Expr.div (Expr.add (Expr.mul (e_int 2) h) (e_int 4)) (e_int 2));
  (* residue stays opaque *)
  let r = Expr.div (Expr.add h Expr.one) (e_int 2) in
  Alcotest.(check bool) "symbolic residue is opaque" false (Expr.is_const r)

let test_modulo () =
  check_expr "7 mod 3" "1" (Expr.modulo (e_int 7) (e_int 3));
  check_expr "x mod 1" "0" (Expr.modulo h Expr.one);
  check_expr "2H mod 2" "0" (Expr.modulo (Expr.mul (e_int 2) h) (e_int 2));
  check_expr "(2H+3) mod 2" "1" (Expr.modulo (Expr.add (Expr.mul (e_int 2) h) (e_int 3)) (e_int 2))

let test_min_max () =
  check_expr "max const" "5" (Expr.max_ (e_int 3) (e_int 5));
  check_expr "min const" "3" (Expr.min_ (e_int 3) (e_int 5));
  check_expr "max self" "H" (Expr.max_ h h);
  check_expr "max dominated" "2 + H" (Expr.max_ h (Expr.add h (e_int 2)));
  check_expr "min dominated" "H" (Expr.min_ h (Expr.add h (e_int 2)));
  (* commutative canonical form *)
  Alcotest.(check bool) "max commutes" true
    (Expr.equal (Expr.max_ h w) (Expr.max_ w h))

let test_eval () =
  let env = Env.of_list [ "H", 8; "W", 3 ] in
  let ev e = Env.eval env e in
  Alcotest.(check (option int)) "H*W+1" (Some 25) (ev (Expr.add (Expr.mul h w) Expr.one));
  Alcotest.(check (option int)) "(H+1)/2" (Some 4) (ev (Expr.div (Expr.add h Expr.one) (e_int 2)));
  Alcotest.(check (option int)) "unbound" None (ev (Expr.sym "Z"));
  Alcotest.(check (option int)) "max(H,W)" (Some 8) (ev (Expr.max_ h w));
  Alcotest.(check int) "eval_exn" 11 (Env.eval_exn env (Expr.add h w))

let test_subst () =
  let r = Expr.subst (fun s -> if s = "H" then Some (Expr.mul (e_int 2) w) else None) (Expr.add h w) in
  check_expr "subst H:=2W in H+W" "3*W" r;
  (* substitution inside opaque terms renormalizes *)
  let d = Expr.div (Expr.add h Expr.one) (e_int 2) in
  let r = Expr.subst (fun s -> if s = "H" then Some (e_int 7) else None) d in
  check_expr "subst into div" "4" r

let test_free_syms () =
  Alcotest.(check (list string)) "syms" [ "H"; "W" ]
    (Expr.free_syms (Expr.div (Expr.add h Expr.one) w))

let test_lattice () =
  let eq = Int.equal in
  let meet = Lattice.meet ~equal:eq in
  Alcotest.(check bool) "undef neutral" true
    (Lattice.equal ~equal:eq (Lattice.Known 3) (meet Lattice.Undef (Lattice.Known 3)));
  Alcotest.(check bool) "conflict -> nac" true
    (Lattice.equal ~equal:eq Lattice.Nac (meet (Lattice.Known 3) (Lattice.Known 4)));
  Alcotest.(check bool) "nac absorbs" true
    (Lattice.equal ~equal:eq Lattice.Nac (meet Lattice.Nac (Lattice.Known 3)))

let test_dim_broadcast () =
  let d1 = Dim.of_int 1 and dh = Dim.of_sym "H" and d8 = Dim.of_int 8 in
  let r, resolved = Dim.broadcast d1 dh in
  Alcotest.(check bool) "1 x H resolved" true resolved;
  Alcotest.(check bool) "1 x H = H" true (Dim.equal dh r);
  let r, resolved = Dim.broadcast dh dh in
  Alcotest.(check bool) "H x H resolved" true (resolved && Dim.equal dh r);
  let _, resolved = Dim.broadcast dh d8 in
  Alcotest.(check bool) "H x 8 unresolved" false resolved;
  let r, _ = Dim.broadcast (Dim.of_int 3) (Dim.of_int 5) in
  Alcotest.(check bool) "invalid const broadcast -> nac" true (r = Dim.nac)

let test_shape_ops () =
  let s = Shape.of_dims [ Dim.of_int 1; Dim.of_sym "H"; Dim.of_int 8 ] in
  Alcotest.(check (option int)) "rank" (Some 3) (Shape.rank s);
  Alcotest.(check bool) "not fully known" false (Shape.is_fully_known s);
  Alcotest.(check bool) "symbolically known" true (Shape.is_symbolically_known s);
  (match Shape.numel s with
  | Some e -> Alcotest.(check string) "numel" "8*H" (Expr.to_string e)
  | None -> Alcotest.fail "numel");
  Alcotest.(check (option (list int))) "eval" (Some [ 1; 4; 8 ])
    (Shape.eval (Env.of_list [ "H", 4 ]) s);
  (* negative index *)
  Alcotest.(check bool) "dim -1" true (Dim.equal (Dim.of_int 8) (Shape.dim s (-1)));
  (* meet fills undef dims *)
  let partial = Shape.Ranked [| Dim.undef; Dim.of_sym "H"; Dim.undef |] in
  let met = Shape.meet partial s in
  Alcotest.(check bool) "meet refines" true (Shape.equal met s);
  (* rank mismatch -> nac *)
  Alcotest.(check bool) "rank mismatch" true (Shape.meet s (Shape.of_ints [ 2; 2 ]) = Shape.Nac)

let test_shape_broadcast () =
  let a = Shape.of_dims [ Dim.of_sym "H"; Dim.of_int 1 ] in
  let b = Shape.of_dims [ Dim.of_int 1; Dim.of_sym "W" ] in
  let out, unresolved = Shape.broadcast a b in
  Alcotest.(check int) "resolved" 0 unresolved;
  Alcotest.(check string) "outer product" "[H, W]" (Shape.to_string out);
  (* rank extension *)
  let c = Shape.of_ints [ 8 ] in
  let out, _ = Shape.broadcast a c in
  Alcotest.(check (option int)) "rank" (Some 2) (Shape.rank out)

let test_value_info () =
  let v = Value_info.of_exprs [ h; w ] in
  Alcotest.(check (option (list int))) "eval" (Some [ 2; 3 ])
    (Value_info.eval (Env.of_list [ "H", 2; "W", 3 ]) v);
  let too_big = Value_info.of_ints (List.init 100 Fun.id) in
  Alcotest.(check bool) "oversize tracked as nac" true (too_big = Value_info.nac)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

(* Random expression trees together with a direct (non-normalizing)
   evaluator; symbols take positive values. *)
type raw =
  | Rconst of int
  | Rsym of int  (* index into a fixed symbol list *)
  | Radd of raw * raw
  | Rsub of raw * raw
  | Rmul of raw * raw
  | Rdiv of raw * raw
  | Rmax of raw * raw
  | Rmin of raw * raw

let syms = [| "A"; "B"; "C" |]

let raw_gen =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof [ map (fun c -> Rconst c) (int_range (-6) 6); map (fun i -> Rsym i) (int_range 0 2) ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map (fun c -> Rconst c) (int_range (-6) 6);
                map (fun i -> Rsym i) (int_range 0 2);
                map2 (fun a b -> Radd (a, b)) sub sub;
                map2 (fun a b -> Rsub (a, b)) sub sub;
                map2 (fun a b -> Rmul (a, b)) sub sub;
                map2 (fun a b -> Rdiv (a, b)) sub sub;
                map2 (fun a b -> Rmax (a, b)) sub sub;
                map2 (fun a b -> Rmin (a, b)) sub sub;
              ])
        (min n 6))

let rec to_expr = function
  | Rconst c -> Expr.const c
  | Rsym i -> Expr.sym syms.(i)
  | Radd (a, b) -> Expr.add (to_expr a) (to_expr b)
  | Rsub (a, b) -> Expr.sub (to_expr a) (to_expr b)
  | Rmul (a, b) -> Expr.mul (to_expr a) (to_expr b)
  | Rdiv (a, b) -> Expr.div (to_expr a) (to_expr b)
  | Rmax (a, b) -> Expr.max_ (to_expr a) (to_expr b)
  | Rmin (a, b) -> Expr.min_ (to_expr a) (to_expr b)

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

(* Direct semantics: [None] wherever a divisor is <= 0 (the algebra only
   promises equivalence for positive divisors). *)
let rec eval_raw env = function
  | Rconst c -> Some c
  | Rsym i -> Some env.(i)
  | Radd (a, b) -> Option.bind (eval_raw env a) (fun x -> Option.map (( + ) x) (eval_raw env b))
  | Rsub (a, b) ->
    Option.bind (eval_raw env a) (fun x -> Option.map (fun y -> x - y) (eval_raw env b))
  | Rmul (a, b) ->
    Option.bind (eval_raw env a) (fun x -> Option.map (fun y -> x * y) (eval_raw env b))
  | Rdiv (a, b) -> (
    match eval_raw env a, eval_raw env b with
    | Some x, Some y when y > 0 -> Some (floor_div x y)
    | _ -> None)
  | Rmax (a, b) -> (
    match eval_raw env a, eval_raw env b with
    | Some x, Some y -> Some (max x y)
    | _ -> None)
  | Rmin (a, b) -> (
    match eval_raw env a, eval_raw env b with
    | Some x, Some y -> Some (min x y)
    | _ -> None)

(* Note: divisions with non-positive symbolic divisors evaluate to None on
   both sides, so the comparison below stays meaningful. *)
let prop_eval_preserved =
  QCheck2.Test.make ~name:"normalization preserves evaluation" ~count:500
    QCheck2.Gen.(tup4 raw_gen (int_range 1 9) (int_range 1 9) (int_range 1 9))
    (fun (raw, a, b, c) ->
      let env = [| a; b; c |] in
      let lookup s = if s = "A" then Some a else if s = "B" then Some b else if s = "C" then Some c else None in
      match eval_raw env raw with
      | None -> true (* a divisor was not strictly positive somewhere *)
      | Some direct -> (
        match Expr.eval lookup (to_expr raw) with
        | Some v -> v = direct
        | None -> false))

let prop_normal_form_canonical =
  QCheck2.Test.make ~name:"a+b and b+a normalize identically" ~count:200
    QCheck2.Gen.(tup2 raw_gen raw_gen)
    (fun (ra, rb) ->
      let a = to_expr ra and b = to_expr rb in
      Expr.equal (Expr.add a b) (Expr.add b a)
      && Expr.equal (Expr.mul a b) (Expr.mul b a)
      && Expr.is_zero (Expr.sub a a))

let prop_subst_id =
  QCheck2.Test.make ~name:"identity substitution is a no-op" ~count:200 raw_gen
    (fun raw ->
      let e = to_expr raw in
      Expr.equal e (Expr.subst (fun _ -> None) e))

let prop_lattice_meet_laws =
  QCheck2.Test.make ~name:"lattice meet is commutative/associative/idempotent" ~count:200
    QCheck2.Gen.(tup3 (int_range 0 3) (int_range 0 3) (int_range 0 3))
    (fun (a, b, c) ->
      let lift = function
        | 0 -> Lattice.Undef
        | 1 -> Lattice.Nac
        | n -> Lattice.Known n
      in
      let a = lift a and b = lift b and c = lift c in
      let eq = Int.equal in
      let m = Lattice.meet ~equal:eq in
      let leq = Lattice.equal ~equal:eq in
      leq (m a b) (m b a)
      && leq (m a (m b c)) (m (m a b) c)
      && leq (m a a) a)

let suite =
  [
    Alcotest.test_case "const folding" `Quick test_const_folding;
    Alcotest.test_case "symbolic normal form" `Quick test_symbolic_normal_form;
    Alcotest.test_case "subtraction cancels" `Quick test_sub_cancellation;
    Alcotest.test_case "division" `Quick test_division;
    Alcotest.test_case "modulo" `Quick test_modulo;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "free symbols" `Quick test_free_syms;
    Alcotest.test_case "lattice basics" `Quick test_lattice;
    Alcotest.test_case "dim broadcast" `Quick test_dim_broadcast;
    Alcotest.test_case "shape operations" `Quick test_shape_ops;
    Alcotest.test_case "shape broadcast" `Quick test_shape_broadcast;
    Alcotest.test_case "value info" `Quick test_value_info;
    QCheck_alcotest.to_alcotest prop_eval_preserved;
    QCheck_alcotest.to_alcotest prop_normal_form_canonical;
    QCheck_alcotest.to_alcotest prop_subst_id;
    QCheck_alcotest.to_alcotest prop_lattice_meet_laws;
  ]
