(* Smoke tests: every experiment reproduction runs and yields the expected
   row structure at a reduced sample count, and the key qualitative claims
   hold (the "shape" of the paper's results). *)

module E = Sod2_experiments.Experiments
module T = Sod2_experiments.Table

let rows t = t.T.rows

let parse_ratio cell = float_of_string (Filename.chop_suffix cell "x")

let test_table1 () =
  let t = E.table1 () in
  Alcotest.(check int) "three models" 3 (List.length (rows t));
  (* re-initialization (SL+ST) dwarfs inference on CPU for every model *)
  List.iter
    (fun row ->
      match row with
      | _model :: sl :: st :: _alloc :: infer :: _ ->
        let reinit = float_of_string sl +. float_of_string st in
        Alcotest.(check bool) "reinit > infer" true (reinit > float_of_string infer)
      | _ -> Alcotest.fail "row shape")
    (rows t)

let test_table5_and_6 () =
  let t5 = E.table5 ~n:6 () in
  Alcotest.(check int) "10 models + geomean" 11 (List.length (rows t5));
  (* the geo-mean row: every baseline uses at least as much memory *)
  (match List.rev (rows t5) with
  | geo :: _ ->
    (match geo with
    | _ :: ort :: _ :: mnn :: _ :: tvm :: _ ->
      Alcotest.(check bool) "ORT >= 1x" true (parse_ratio ort >= 1.0);
      Alcotest.(check bool) "MNN >= 1x" true (parse_ratio mnn >= 1.0);
      Alcotest.(check bool) "TVM >= MNN" true (parse_ratio tvm >= parse_ratio mnn)
    | _ -> Alcotest.fail "geo row shape")
  | [] -> Alcotest.fail "empty table");
  let t6 = E.table6 ~n:6 () in
  Alcotest.(check int) "10 models + geomean" 11 (List.length (rows t6))

let test_table7_trend () =
  let t = E.table7 () in
  List.iter
    (fun row ->
      match row with
      | _fw :: cells ->
        let speeds = List.map parse_ratio cells in
        (* SoD2 is ahead at every percentile, and more ahead at the top
           than at the bottom of the size distribution *)
        List.iter (fun s -> Alcotest.(check bool) "ahead" true (s >= 1.0)) speeds;
        Alcotest.(check bool) "grows with size" true
          (List.nth speeds 4 >= List.nth speeds 0)
      | [] -> Alcotest.fail "row")
    (rows t)

let test_fig5_fig6_monotone () =
  let t = E.fig5 ~n:4 () in
  List.iter
    (fun row ->
      match row with
      | _model :: cells ->
        let vals = List.map float_of_string cells in
        (* cumulative optimizations never increase memory *)
        let rec non_increasing = function
          | a :: b :: rest -> b <= a +. 1e-9 && non_increasing (b :: rest)
          | _ -> true
        in
        Alcotest.(check bool) "memory non-increasing" true (non_increasing vals)
      | [] -> Alcotest.fail "row")
    (rows t);
  let t = E.fig6 ~n:4 () in
  List.iter
    (fun row ->
      match row with
      | _model :: cells ->
        let vals = List.map float_of_string cells in
        let rec non_decreasing = function
          | a :: b :: rest -> b >= a -. 0.02 && non_decreasing (b :: rest)
          | _ -> true
        in
        Alcotest.(check bool) "speedup non-decreasing" true (non_decreasing vals)
      | [] -> Alcotest.fail "row")
    (rows t)

let test_fig7_rdp_beats_static () =
  let t = E.fig7 () in
  List.iter
    (fun row ->
      match row with
      | _m :: _lc0 :: lc_s :: lc_r :: _ir0 :: ir_s :: ir_r :: _ ->
        Alcotest.(check bool) "RDP fuses more layers" true
          (float_of_string lc_r < float_of_string lc_s);
        Alcotest.(check bool) "RDP shrinks IR more" true
          (float_of_string ir_r <= float_of_string ir_s)
      | _ -> Alcotest.fail "row shape")
    (rows t)

let test_fig8_optimizable_majority () =
  let t = E.fig8 () in
  let count_rows =
    List.filter (fun r -> String.length (List.hd r) > 0 &&
                          String.length (List.hd r) >= 7 &&
                          String.sub (List.hd r) (String.length (List.hd r) - 7) 7 = "(count)")
      (rows t)
  in
  List.iter
    (fun row ->
      match row with
      | _m :: cells ->
        let pct s = float_of_string (Filename.chop_suffix s "%") in
        let optimizable = pct (List.nth cells 0) +. pct (List.nth cells 1)
                          +. pct (List.nth cells 2) +. pct (List.nth cells 3) in
        (* the paper's claim: over 90% of sub-graphs are plannable *)
        Alcotest.(check bool) "over 90% optimizable" true (optimizable >= 90.0)
      | [] -> Alcotest.fail "row")
    count_rows

let test_fig9_11_12 () =
  let t = E.fig9 ~n:4 () in
  List.iter
    (fun row ->
      Alcotest.(check bool) "faster even without branch selection" true
        (parse_ratio (List.nth row 1) > 1.0))
    (rows t);
  let t = E.fig11 ~n:4 () in
  List.iter
    (fun row ->
      Alcotest.(check bool) "beats TFLite under equal budget" true
        (parse_ratio (List.nth row 1) > 1.0))
    (rows t);
  let t = E.fig12 () in
  List.iter
    (fun row ->
      let pct = float_of_string (Filename.chop_suffix (List.nth row 1) "%") in
      Alcotest.(check bool) "small positive overhead" true (pct >= 0.0 && pct <= 15.0))
    (rows t)

let test_fig10_monotone () =
  let t = E.fig10 () in
  let sod2 = List.map (fun row -> float_of_string (List.nth row 2)) (rows t) in
  let rec mostly_increasing = function
    | a :: b :: rest -> b >= a *. 0.9 && mostly_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "latency grows with size" true (mostly_increasing sod2)

let test_memplan_ablation () =
  let t = E.memplan_ablation () in
  List.iter
    (fun row ->
      let pf = parse_ratio (List.nth row 1) and gr = parse_ratio (List.nth row 2) in
      Alcotest.(check bool) "peak-first <= greedy" true (pf <= gr +. 1e-9);
      Alcotest.(check bool) "peak-first near optimal" true (pf <= 1.10))
    (rows t)

let test_extensions () =
  (* ordering ablation: SoD2 never loses to breadth-first, and wins on the
     wide synthetic graph *)
  let t = E.ordering_ablation () in
  List.iter
    (fun row ->
      let sod2 = float_of_string (List.nth row 3) in
      Alcotest.(check bool) "never worse than bfs" true (sod2 <= 1.0 +. 1e-9);
      if List.hd row = "wide multi-branch" then
        Alcotest.(check bool) "wins with slack" true (sod2 < 0.8))
    (rows t);
  (* tuner ablation: searched >= untuned *)
  let t = E.tuner_ablation () in
  List.iter
    (fun row ->
      let untuned = float_of_string (List.nth row 1) in
      let ga = float_of_string (List.nth row 3) in
      Alcotest.(check bool) "GA beats untuned" true (ga >= untuned))
    (rows t);
  (* LLM decode: SoD2 per-step cost stays in the same order of magnitude
     while the re-initializing engine pays per-step recompilation *)
  let t = E.llm_decode () in
  List.iter
    (fun row ->
      Alcotest.(check bool) "large per-step speedup" true
        (parse_ratio (List.nth row 3) > 50.0))
    (rows t)

let suite =
  [
    Alcotest.test_case "extensions (ablations + LLM decode)" `Slow test_extensions;
    Alcotest.test_case "Table 1 structure" `Slow test_table1;
    Alcotest.test_case "Tables 5 and 6" `Slow test_table5_and_6;
    Alcotest.test_case "Table 7 trend" `Slow test_table7_trend;
    Alcotest.test_case "Figs 5/6 monotone" `Slow test_fig5_fig6_monotone;
    Alcotest.test_case "Fig 7: RDP beats static fusion" `Quick test_fig7_rdp_beats_static;
    Alcotest.test_case "Fig 8: >90% optimizable" `Quick test_fig8_optimizable_majority;
    Alcotest.test_case "Figs 9/11/12" `Slow test_fig9_11_12;
    Alcotest.test_case "Fig 10 monotone" `Slow test_fig10_monotone;
    Alcotest.test_case "memory-plan ablation" `Quick test_memplan_ablation;
  ]
