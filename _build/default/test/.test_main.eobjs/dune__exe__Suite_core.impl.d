test/suite_core.ml: Alcotest Array Cost_model Dim Env Fun Graph Hashtbl List Op Option Printf Profile QCheck2 QCheck_alcotest Rng Shape Sod2 Sod2_experiments Tensor Zoo
