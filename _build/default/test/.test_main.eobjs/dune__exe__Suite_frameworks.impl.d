test/suite_frameworks.ml: Alcotest Framework List Option Printf Profile Sod2_experiments Sod2_runtime Workload Zoo
