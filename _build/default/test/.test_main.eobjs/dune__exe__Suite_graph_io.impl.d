test/suite_graph_io.ml: Alcotest Array Env Filename Graph Graph_io List Op Op_codec Option Profile Result Rng Sexp Shape Sod2 Sod2_experiments Sod2_runtime String Sys Tensor Zoo
