test/suite_tensor.ml: Alcotest Array Linalg List QCheck2 QCheck_alcotest Reduction Rng Tensor Transform
