test/suite_rdp.ml: Alcotest Array Dim Env Expr Graph List Op Op_class Option Profile QCheck2 QCheck_alcotest Rng Shape Sod2 Sod2_experiments Sod2_runtime Tensor Value_info Workload Zoo
