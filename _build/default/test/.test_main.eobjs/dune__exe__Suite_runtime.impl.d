test/suite_runtime.ml: Alcotest Array Dim Env Graph Hashtbl List Op Option Profile Rng Shape Sod2 Sod2_experiments Sod2_runtime Tensor Workload Zoo
