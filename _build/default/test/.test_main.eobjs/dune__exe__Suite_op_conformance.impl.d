test/suite_op_conformance.ml: Alcotest Array Dim Expr Float Lattice List Op Option QCheck2 QCheck_alcotest Rng Shape Shape_fn Sod2_runtime Tensor Value_info
