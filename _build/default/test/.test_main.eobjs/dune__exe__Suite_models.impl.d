test/suite_models.ml: Alcotest Codebert Env Gpt_decoder Graph List Option Profile Rng Shape Sod2 Sod2_experiments Sod2_runtime Tensor Workload Zoo
