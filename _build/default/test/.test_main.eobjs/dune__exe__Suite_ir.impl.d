test/suite_ir.ml: Alcotest Array Dim Expr Graph List Op Op_class Option Shape Shape_fn String Value_info
