test/suite_symbolic.ml: Alcotest Array Dim Env Expr Fun Int Lattice List Option QCheck2 QCheck_alcotest Shape Value_info
