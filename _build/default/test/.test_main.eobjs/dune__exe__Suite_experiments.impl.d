test/suite_experiments.ml: Alcotest Filename List Sod2_experiments String
