(* Tests for the framework simulators: the support matrix, re-init
   semantics, per-framework cost structure, and the headline ordering the
   paper reports (SoD2 dominates on latency and memory). *)

let cpu = Profile.sd888_cpu
let gpu = Profile.sd888_gpu

let spec name = Option.get (Zoo.by_name name)
let graph_of name = Sod2_experiments.Harness.graph_of (spec name)

let session ?(profile = cpu) kind name =
  let sp = spec name in
  let g = graph_of name in
  Framework.create kind profile g ~max_dims:(Zoo.input_dims sp g (Zoo.max_env sp))

let run ?control s name (sm : Workload.sample) =
  let sp = spec name in
  Framework.run ?control s ~input_dims:(Zoo.input_dims sp (graph_of name) sm.env) ~gate:sm.gate

let test_support_matrix () =
  let sup k m t = Framework.supports k ~model:m t in
  (* the '-' cells of Tables 5/6 *)
  Alcotest.(check bool) "ORT no conformer" false (sup Framework.Ort "conformer" Profile.Cpu);
  Alcotest.(check bool) "ORT no SA" false (sup Framework.Ort "segment-anything" Profile.Cpu);
  Alcotest.(check bool) "MNN no SA" false (sup Framework.Mnn "segment-anything" Profile.Cpu);
  Alcotest.(check bool) "MNN GPU no codebert" false (sup Framework.Mnn "codebert" Profile.Gpu);
  Alcotest.(check bool) "MNN GPU conformer ok" true (sup Framework.Mnn "conformer" Profile.Gpu);
  Alcotest.(check bool) "TVM-N CPU yolo" true (sup Framework.Tvm_nimble "yolov6" Profile.Cpu);
  Alcotest.(check bool) "TVM-N no GPU" false (sup Framework.Tvm_nimble "yolov6" Profile.Gpu);
  Alcotest.(check bool) "SoD2 everything" true (sup Framework.Sod2_fw "segment-anything" Profile.Gpu)

let test_reinit_semantics () =
  let s = session Framework.Mnn "codebert" in
  let sm p i = Workload.sample_at (spec "codebert") ~percentile:p ~idx:i in
  let first = run s "codebert" (sm 0.2 0) in
  Alcotest.(check bool) "first run initializes" true first.Framework.reinitialized;
  let same = run s "codebert" (sm 0.2 1) in
  Alcotest.(check bool) "same shape: no reinit" false same.Framework.reinitialized;
  Alcotest.(check (float 0.001)) "no reinit cost" 0.0 same.Framework.reinit_us;
  let changed = run s "codebert" (sm 0.9 2) in
  Alcotest.(check bool) "shape change reinitializes" true changed.Framework.reinitialized;
  Alcotest.(check bool) "reinit dominated by tuning" true
    (changed.Framework.bd.tuning_us > changed.Framework.bd.shape_pass_us);
  (* SoD2 never reinitializes *)
  let s = session Framework.Sod2_fw "codebert" in
  let a = run s "codebert" (sm 0.2 0) in
  let b = run s "codebert" (sm 0.9 1) in
  Alcotest.(check bool) "sod2 shape change free" true
    ((not a.Framework.reinitialized) && not b.Framework.reinitialized)

let test_per_framework_cost_structure () =
  let sm = Workload.sample_at (spec "yolov6") ~percentile:0.5 ~idx:0 in
  (* TVM-N pays runtime shape functions and dynamic allocation every run *)
  let tvm = run (session Framework.Tvm_nimble "yolov6") "yolov6" sm in
  Alcotest.(check bool) "tvm shape fns" true (tvm.Framework.bd.shape_pass_us > 0.0);
  Alcotest.(check bool) "tvm mallocs" true (tvm.Framework.bd.alloc_us > 0.0);
  (* SoD2's per-inference overheads are tiny relative to inference *)
  let sod2 = run (session Framework.Sod2_fw "yolov6") "yolov6" sm in
  Alcotest.(check bool) "sod2 plan instantiation is cheap" true
    (sod2.Framework.bd.alloc_us < 0.1 *. sod2.Framework.bd.infer_us);
  Alcotest.(check (float 0.001)) "sod2 no shape pass" 0.0 sod2.Framework.bd.shape_pass_us

let test_sod2_dominates () =
  (* the headline: on every supported model, SoD2's mean latency and memory
     are no worse than every baseline's *)
  List.iter
    (fun (sp : Zoo.spec) ->
      let samples = Workload.samples ~n:6 sp in
      let mean f l = List.fold_left (fun a x -> a +. f x) 0.0 l /. float_of_int (List.length l) in
      let stats kind =
        let s = session kind sp.name in
        List.map (fun sm -> run s sp.name sm) samples
      in
      let sod2 = stats Framework.Sod2_fw in
      let s_lat = mean (fun (s : Framework.stats) -> s.latency_us) sod2 in
      let s_mem = mean (fun (s : Framework.stats) -> float_of_int s.peak_bytes) sod2 in
      List.iter
        (fun kind ->
          if Framework.supports kind ~model:sp.name Profile.Cpu then begin
            let b = stats kind in
            let b_lat = mean (fun (s : Framework.stats) -> s.latency_us) b in
            let b_mem = mean (fun (s : Framework.stats) -> float_of_int s.peak_bytes) b in
            if b_lat < s_lat *. 0.999 then
              Alcotest.failf "%s: %s latency beats SoD2" sp.name (Framework.kind_name kind);
            if b_mem < s_mem *. 0.999 then
              Alcotest.failf "%s: %s memory beats SoD2" sp.name (Framework.kind_name kind)
          end)
        [ Framework.Ort; Framework.Mnn; Framework.Tvm_nimble ])
    Zoo.all

let test_gpu_faster_but_memory_similar () =
  let sm = Workload.sample_at (spec "yolov6") ~percentile:0.5 ~idx:0 in
  let c = run (session Framework.Sod2_fw "yolov6") "yolov6" sm in
  let g = run (session ~profile:gpu Framework.Sod2_fw "yolov6") "yolov6" sm in
  Alcotest.(check bool) "gpu faster" true (g.Framework.latency_us < c.Framework.latency_us);
  Alcotest.(check int) "same plan memory" c.Framework.peak_bytes g.Framework.peak_bytes

let test_budget_semantics () =
  let sp = spec "skipnet" in
  let s = session Framework.Tflite "skipnet" in
  let sm = Workload.sample_at sp ~percentile:0.5 ~idx:0 in
  let free = run s "skipnet" sm in
  let input_dims = Zoo.input_dims sp (graph_of "skipnet") sm.env in
  (* generous budget: nothing changes *)
  let easy =
    Framework.run_with_budget s ~budget_bytes:(free.Framework.peak_bytes * 2) ~input_dims
      ~gate:sm.gate
  in
  Alcotest.(check (float 0.01)) "under budget unchanged" free.Framework.latency_us
    easy.Framework.latency_us;
  (* tight budget: latency rises, memory capped *)
  let tight =
    Framework.run_with_budget s ~budget_bytes:(free.Framework.peak_bytes / 4) ~input_dims
      ~gate:sm.gate
  in
  Alcotest.(check bool) "remat penalty" true
    (tight.Framework.latency_us > free.Framework.latency_us);
  Alcotest.(check int) "memory capped" (free.Framework.peak_bytes / 4)
    tight.Framework.peak_bytes

let test_all_paths_costs_more () =
  let sp = spec "blockdrop" in
  let s = session Framework.Sod2_fw "blockdrop" in
  let sm = { (Workload.sample_at sp ~percentile:0.5 ~idx:0) with gate = Workload.fixed_gates 1 } in
  let sel = run ~control:Sod2_runtime.Executor.Selected_only s "blockdrop" sm in
  let all = run ~control:Sod2_runtime.Executor.All_paths s "blockdrop" sm in
  Alcotest.(check bool) "all-paths at least as slow" true
    (all.Framework.latency_us >= sel.Framework.latency_us)

let test_dnnfusion_close_to_sod2 () =
  let sp = spec "ranet" in
  let sm = { (Workload.sample_at sp ~percentile:0.5 ~idx:0) with gate = Workload.fixed_gates 1 } in
  let d = run (session Framework.Dnnfusion "ranet") "ranet" sm in
  let s = run (session Framework.Sod2_fw "ranet") "ranet" sm in
  let overhead = s.Framework.latency_us /. d.Framework.latency_us in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.3f in [1.0, 1.15]" overhead)
    true
    (overhead >= 0.99 && overhead <= 1.15)

let suite =
  [
    Alcotest.test_case "support matrix" `Quick test_support_matrix;
    Alcotest.test_case "re-initialization semantics" `Quick test_reinit_semantics;
    Alcotest.test_case "per-framework cost structure" `Quick test_per_framework_cost_structure;
    Alcotest.test_case "SoD2 dominates baselines" `Slow test_sod2_dominates;
    Alcotest.test_case "GPU profile effects" `Quick test_gpu_faster_but_memory_similar;
    Alcotest.test_case "memory-budget semantics" `Quick test_budget_semantics;
    Alcotest.test_case "all-paths costs more" `Quick test_all_paths_costs_more;
    Alcotest.test_case "DNNFusion overhead band (Fig 12)" `Quick test_dnnfusion_close_to_sod2;
  ]
