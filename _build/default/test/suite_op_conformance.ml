(* Operator conformance: for every operator of the IR, execute the
   reference kernel on concrete inputs and check that the RDP transfer
   function ({!Shape_fn.forward}), fed the same information symbolically
   (here: as constants), predicts exactly the shapes — and, where tracked,
   the values — the kernel produced.

   This pins the two halves of the system together: if a kernel and its
   transfer function ever disagree, compilation plans would not match
   execution.  Execution-determined extents (the [nac] dims of NonZero,
   NonMaxSuppression, data-dependent TopK) are exempt by definition. *)

let value_of_tensor (t : Tensor.t) : Value_info.t =
  if Tensor.dtype t = Tensor.I64 && Tensor.numel t <= Value_info.max_tracked_elements then
    Value_info.of_ints (Tensor.to_int_list t)
  else Lattice.Nac

let io_of_inputs inputs =
  {
    Shape_fn.in_shapes = Array.of_list (List.map (fun t -> Shape.of_ints (Tensor.dims t)) inputs);
    in_values = Array.of_list (List.map value_of_tensor inputs);
  }

(* Check one case; [msg] names it in failures. *)
let agree ?(allow_nac = false) msg op inputs =
  let outs = Sod2_runtime.Kernels.run op inputs in
  let shapes, values = Shape_fn.forward op (io_of_inputs inputs) in
  if Array.length shapes <> List.length outs then
    Alcotest.failf "%s: %d outputs vs %d predicted" msg (List.length outs)
      (Array.length shapes);
  List.iteri
    (fun i out ->
      let actual = Tensor.dims out in
      (match shapes.(i) with
      | Shape.Ranked d ->
        if Array.length d <> List.length actual then
          Alcotest.failf "%s: rank %d predicted, %d actual" msg (Array.length d)
            (List.length actual);
        Array.iteri
          (fun j dim ->
            match Dim.as_const dim with
            | Some v ->
              if v <> List.nth actual j then
                Alcotest.failf "%s: dim %d predicted %d, actual %d" msg j v
                  (List.nth actual j)
            | None ->
              if not allow_nac then
                Alcotest.failf "%s: dim %d not statically predicted" msg j)
          d
      | Shape.Undef | Shape.Nac ->
        if not allow_nac then Alcotest.failf "%s: shape not predicted" msg);
      (* value tracking, where the analysis claims knowledge, must agree *)
      match Value_info.as_exprs values.(i) with
      | Some exprs when Tensor.dtype out = Tensor.I64 ->
        let predicted = Array.to_list exprs |> List.map (Expr.eval (fun _ -> None)) in
        if List.for_all Option.is_some predicted then begin
          let predicted = List.map Option.get predicted in
          if predicted <> Tensor.to_int_list out then
            Alcotest.failf "%s: value tracking disagrees with kernel" msg
        end
      | _ -> ())
    outs

let rng = Rng.create 2024

let f dims = Tensor.rand_uniform rng dims
let i l = Tensor.of_int_list l

(* ------------------------------------------------------------------ *)
(* Case tables                                                         *)
(* ------------------------------------------------------------------ *)

let unary_cases =
  List.map
    (fun u -> Op.name (Op.Unary u), Op.Unary u)
    [
      Op.Relu; Op.LeakyRelu 0.1; Op.Sigmoid; Op.Tanh; Op.Exp; Op.Sqrt; Op.Neg; Op.Abs;
      Op.Erf; Op.Gelu; Op.HardSwish; Op.Softplus; Op.Floor; Op.Ceil; Op.Round; Op.Not;
      Op.Identity; Op.Sign; Op.Reciprocal; Op.Softsign;
    ]

let binary_cases =
  List.map
    (fun b -> Op.name (Op.Binary b), Op.Binary b)
    [
      Op.Add; Op.Sub; Op.Mul; Op.Pow; Op.Max2; Op.Min2; Op.Equal; Op.Less; Op.Greater;
      Op.And; Op.Or;
    ]

let test_elementwise () =
  List.iter (fun (name, op) -> agree name op [ f [ 2; 3 ] ]) unary_cases;
  (* Log needs positive inputs *)
  agree "Log" (Op.Unary Op.Log) [ Tensor.map_f (fun v -> Float.abs v +. 1.0) (f [ 2; 3 ]) ];
  List.iter
    (fun (name, op) ->
      agree name op [ f [ 2; 3 ]; f [ 2; 3 ] ];
      agree (name ^ "/broadcast") op [ f [ 2; 1 ]; f [ 1; 3 ] ];
      agree (name ^ "/scalar") op [ f [ 2; 3 ]; Tensor.scalar_f 2.0 ])
    binary_cases;
  (* integer binary with value tracking *)
  agree "Add/int-values" (Op.Binary Op.Add) [ i [ 1; 2; 3 ]; i [ 10; 20; 30 ] ];
  agree "Mul/int-values" (Op.Binary Op.Mul) [ i [ 2; 3 ]; i [ 4; 5 ] ];
  agree "Div/int-values" (Op.Binary Op.Div) [ i [ 8; 9 ]; i [ 2; 2 ] ];
  agree "Mod/int-values" (Op.Binary Op.Mod2) [ i [ 8; 9 ]; i [ 3; 3 ] ];
  agree "Clip" (Op.Clip (-0.5, 0.5)) [ f [ 4 ] ];
  agree "Cast" (Op.Cast Tensor.I64) [ f [ 4 ] ];
  agree "Cast/back" (Op.Cast Tensor.F32) [ i [ 1; 2 ] ];
  agree "Where" Op.Where [ Tensor.create_i [ 3 ] [| 1; 0; 1 |]; f [ 3 ]; f [ 3 ] ]

let test_linalg_ops () =
  agree "MatMul" Op.MatMul [ f [ 4; 5 ]; f [ 5; 6 ] ];
  agree "MatMul/batched" Op.MatMul [ f [ 2; 4; 5 ]; f [ 5; 6 ] ];
  agree "MatMul/bcast-batch" Op.MatMul [ f [ 2; 1; 4; 5 ]; f [ 3; 5; 6 ] ];
  agree "Gemm" (Op.Gemm { alpha = 1.0; beta = 1.0; trans_a = false; trans_b = false })
    [ f [ 4; 5 ]; f [ 5; 6 ]; f [ 6 ] ];
  agree "Gemm/transposed" (Op.Gemm { alpha = 0.5; beta = 2.0; trans_a = true; trans_b = true })
    [ f [ 5; 4 ]; f [ 6; 5 ]; f [ 4; 6 ] ];
  agree "Conv" (Op.Conv { stride = (1, 1); pads = (1, 1, 1, 1); dilation = (1, 1); groups = 1 })
    [ f [ 1; 3; 8; 8 ]; f [ 4; 3; 3; 3 ]; f [ 4 ] ];
  agree "Conv/strided"
    (Op.Conv { stride = (2, 2); pads = (0, 1, 0, 1); dilation = (1, 1); groups = 1 })
    [ f [ 1; 2; 9; 9 ]; f [ 4; 2; 2; 2 ] ];
  agree "Conv/dilated"
    (Op.Conv { stride = (1, 1); pads = (2, 2, 2, 2); dilation = (2, 2); groups = 1 })
    [ f [ 1; 2; 8; 8 ]; f [ 2; 2; 3; 3 ] ];
  agree "Conv/grouped"
    (Op.Conv { stride = (1, 1); pads = (0, 0, 0, 0); dilation = (1, 1); groups = 2 })
    [ f [ 1; 4; 6; 6 ]; f [ 4; 2; 1; 1 ] ];
  agree "Conv1d" (Op.Conv1d { stride1 = 2; pads1 = (1, 1); dilation1 = 1; groups1 = 1 })
    [ f [ 1; 2; 9 ]; f [ 3; 2; 3 ]; f [ 3 ] ];
  agree "MaxPool"
    (Op.MaxPool { kernel = (3, 3); pool_stride = (2, 2); pool_pads = (1, 1, 1, 1) })
    [ f [ 1; 2; 7; 7 ] ];
  agree "AveragePool"
    (Op.AveragePool { kernel = (2, 2); pool_stride = (2, 2); pool_pads = (0, 0, 0, 0) })
    [ f [ 1; 2; 8; 8 ] ];
  agree "GlobalAveragePool" Op.GlobalAveragePool [ f [ 2; 3; 4; 5 ] ]

let test_norm_ops () =
  let ch = 4 in
  agree "BatchNorm" (Op.BatchNorm { eps = 1e-5 })
    [ f [ 1; ch; 3; 3 ]; f [ ch ]; f [ ch ]; f [ ch ];
      Tensor.map_f Float.abs (f [ ch ]) ];
  agree "LayerNorm" (Op.LayerNorm { eps = 1e-5 }) [ f [ 2; 3; 8 ]; f [ 8 ]; f [ 8 ] ];
  agree "GroupNorm" (Op.GroupNorm { num_groups = 2; eps = 1e-5 })
    [ f [ 1; 4; 3; 3 ]; f [ 4 ]; f [ 4 ] ];
  agree "InstanceNorm" (Op.InstanceNorm { eps = 1e-5 })
    [ f [ 2; 3; 4; 4 ]; f [ 3 ]; f [ 3 ] ];
  agree "Softmax" (Op.Softmax { axis = -1 }) [ f [ 2; 5 ] ];
  agree "LogSoftmax" (Op.LogSoftmax { axis = 1 }) [ f [ 2; 5 ] ]

let test_reduce_ops () =
  List.iter
    (fun rk ->
      let name = Op.name (Op.Reduce { rkind = rk; axes = [ 1 ]; keepdims = true }) in
      agree (name ^ "/keep") (Op.Reduce { rkind = rk; axes = [ 1 ]; keepdims = true })
        [ f [ 2; 3; 4 ] ];
      agree (name ^ "/drop") (Op.Reduce { rkind = rk; axes = [ 0; 2 ]; keepdims = false })
        [ f [ 2; 3; 4 ] ];
      agree (name ^ "/all") (Op.Reduce { rkind = rk; axes = []; keepdims = false })
        [ f [ 2; 3 ] ])
    [ Op.Rsum; Op.Rmean; Op.Rmax; Op.Rmin; Op.Rprod; Op.Rl2 ];
  agree "ArgMax" (Op.ArgMax { axis = 1; keepdims = false }) [ f [ 2; 5 ] ];
  agree "ArgMax/keep" (Op.ArgMax { axis = -1; keepdims = true }) [ f [ 2; 5 ] ];
  agree "ArgMin" (Op.ArgMin { axis = 0; keepdims = false }) [ f [ 4; 2 ] ];
  agree "CumSum" (Op.CumSum { axis = 1 }) [ f [ 2; 6 ] ]

let test_layout_ops () =
  agree "Transpose" (Op.Transpose [ 2; 0; 1 ]) [ f [ 2; 3; 4 ] ];
  agree "Reshape" Op.Reshape [ f [ 2; 3; 4 ]; i [ 6; 4 ] ];
  agree "Reshape/-1" Op.Reshape [ f [ 2; 3; 4 ]; i [ 2; -1 ] ];
  agree "Reshape/0-copies" Op.Reshape [ f [ 2; 3; 4 ]; i [ 0; -1 ] ];
  agree "Flatten" (Op.Flatten { axis = 1 }) [ f [ 2; 3; 4 ] ];
  agree "Flatten/axis2" (Op.Flatten { axis = 2 }) [ f [ 2; 3; 4 ] ];
  agree "Squeeze" (Op.Squeeze [ 0; 2 ]) [ f [ 1; 3; 1; 4 ] ];
  agree "Unsqueeze" (Op.Unsqueeze [ 0; 3 ]) [ f [ 3; 4 ] ];
  agree "Concat" (Op.Concat { axis = 1 }) [ f [ 2; 3 ]; f [ 2; 5 ] ];
  agree "Concat/int-values" (Op.Concat { axis = 0 }) [ i [ 1; 2 ]; i [ 3 ] ];
  agree "Split" (Op.Split { axis = 1; sizes = [ 2; 3 ] }) [ f [ 2; 5 ] ];
  agree "Slice" Op.Slice [ f [ 6; 4 ]; i [ 1 ]; i [ 5 ]; i [ 0 ]; i [ 2 ] ];
  agree "Slice/int-values" Op.Slice [ i [ 10; 20; 30; 40 ]; i [ 1 ]; i [ 3 ]; i [ 0 ]; i [ 1 ] ];
  agree "Gather" (Op.Gather { axis = 0 }) [ f [ 5; 2 ]; i [ 3; 0; 4 ] ];
  agree "Gather/axis1" (Op.Gather { axis = 1 }) [ f [ 2; 5 ]; i [ 1; 1 ] ];
  agree "Gather/int-values" (Op.Gather { axis = 0 }) [ i [ 7; 8; 9 ]; i [ 2; 0 ] ];
  agree "Pad" (Op.Pad { pad_value = 0.0 }) [ f [ 2; 3 ]; i [ 1; 0; 0; 2 ] ];
  agree "Expand" Op.Expand [ f [ 1; 3 ]; i [ 4; 3 ] ];
  agree "Tile" Op.Tile [ f [ 2; 3 ]; i [ 2; 1 ] ];
  agree "Resize" (Op.Resize Op.Nearest) [ f [ 1; 2; 4; 4 ]; i [ 8; 6 ] ];
  agree "Upsample" (Op.Upsample { scales = [ 2; 3 ] }) [ f [ 1; 2; 3; 3 ] ];
  agree "DepthToSpace" (Op.DepthToSpace { block = 2 }) [ f [ 1; 8; 3; 3 ] ];
  agree "SpaceToDepth" (Op.SpaceToDepth { block = 2 }) [ f [ 1; 2; 4; 4 ] ]

let test_shape_producer_ops () =
  agree "Shape" Op.ShapeOf [ f [ 2; 3; 4 ] ];
  agree "Size" Op.SizeOf [ f [ 2; 3; 4 ] ];
  agree "ConstantOfShape" (Op.ConstantOfShape { fill = 1.5 }) [ i [ 2; 3 ] ];
  agree "EyeLike" Op.EyeLike [ f [ 3; 3 ] ];
  agree "Range" Op.Range [ Tensor.scalar_i 2; Tensor.scalar_i 11; Tensor.scalar_i 3 ];
  agree "OneHot" (Op.OneHot { depth = 5 }) [ i [ 1; 4 ] ]

let test_execution_determined_ops () =
  agree "TopK" (Op.TopK { axis = 0; largest = true }) [ f [ 8 ]; Tensor.scalar_i 3 ];
  agree "TopK/axis1" (Op.TopK { axis = 1; largest = false }) [ f [ 2; 6 ]; Tensor.scalar_i 2 ];
  (* count dims are execution determined by definition *)
  agree ~allow_nac:true "NonZero" Op.NonZero [ f [ 3; 3 ] ];
  agree ~allow_nac:true "NMS" (Op.NonMaxSuppression { max_out = 4; iou_threshold = 0.5 })
    [ f [ 6; 4 ]; Tensor.map_f Float.abs (f [ 6 ]) ]

(* Property: for any elementwise binary operator and any broadcastable
   shape pair, the kernel and the transfer function agree. *)
let prop_broadcast_agreement =
  QCheck2.Test.make ~name:"broadcast shape agreement (kernel vs transfer)" ~count:200
    QCheck2.Gen.(
      tup4 (int_range 1 4) (int_range 1 4) (int_range 0 2) (int_range 0 10))
    (fun (n, m, pick, seed) ->
      let rng = Rng.create (seed + 77) in
      let shape_a, shape_b =
        match pick with
        | 0 -> [ n; 1 ], [ 1; m ]
        | 1 -> [ n; m ], [ m ]
        | _ -> [ 1; n; m ], [ n; 1 ]
      in
      let a = Tensor.rand_uniform rng shape_a and b = Tensor.rand_uniform rng shape_b in
      let out = List.hd (Sod2_runtime.Kernels.run (Op.Binary Op.Add) [ a; b ]) in
      let shapes, _ = Shape_fn.forward (Op.Binary Op.Add) (io_of_inputs [ a; b ]) in
      Shape.as_ints shapes.(0) = Some (Tensor.dims out))

(* Property: Reshape with a random valid factorization round-trips. *)
let prop_reshape_agreement =
  QCheck2.Test.make ~name:"reshape agreement over random factorizations" ~count:100
    QCheck2.Gen.(tup3 (int_range 1 4) (int_range 1 4) (int_range 0 10))
    (fun (a, b, seed) ->
      let rng = Rng.create (seed + 5) in
      let t = Tensor.rand_uniform rng [ a; b; 2 ] in
      let target = Tensor.of_int_list [ b; -1 ] in
      let out = List.hd (Sod2_runtime.Kernels.run Op.Reshape [ t; target ]) in
      let shapes, _ = Shape_fn.forward Op.Reshape (io_of_inputs [ t; target ]) in
      Shape.as_ints shapes.(0) = Some (Tensor.dims out))

let suite =
  [
    Alcotest.test_case "elementwise operators" `Quick test_elementwise;
    Alcotest.test_case "linear algebra operators" `Quick test_linalg_ops;
    Alcotest.test_case "normalization operators" `Quick test_norm_ops;
    Alcotest.test_case "reduction operators" `Quick test_reduce_ops;
    Alcotest.test_case "layout operators" `Quick test_layout_ops;
    Alcotest.test_case "shape-producer operators" `Quick test_shape_producer_ops;
    Alcotest.test_case "execution-determined operators" `Quick test_execution_determined_ops;
    QCheck_alcotest.to_alcotest prop_broadcast_agreement;
    QCheck_alcotest.to_alcotest prop_reshape_agreement;
  ]
