(* Tests for the model zoo and workload generators. *)

let test_all_models_build () =
  List.iter
    (fun (sp : Zoo.spec) ->
      let g = Sod2_experiments.Harness.graph_of sp in
      Alcotest.(check bool) (sp.name ^ " nonempty") true (Graph.node_count g > 50);
      (* dynamism metadata is consistent with the graph *)
      let gates = Zoo.gate_count g in
      (match sp.dynamism with
      | Zoo.Shape_dyn ->
        Alcotest.(check int) (sp.name ^ " no gates") 0 gates;
        Alcotest.(check bool) (sp.name ^ " has shape vars") true (sp.dim_choices <> [])
      | Zoo.Control_dyn ->
        Alcotest.(check bool) (sp.name ^ " gated") true (gates > 0);
        Alcotest.(check (list (pair string (list int)))) (sp.name ^ " fixed shape") []
          sp.dim_choices
      | Zoo.Both_dyn ->
        Alcotest.(check bool) (sp.name ^ " gated") true (gates > 0);
        Alcotest.(check bool) (sp.name ^ " has shape vars") true (sp.dim_choices <> []));
      (* graph shape variables match the declared choices *)
      let declared = List.map fst sp.dim_choices |> List.sort compare in
      Alcotest.(check (list string)) (sp.name ^ " shape vars") declared (Graph.free_syms g))
    Zoo.all

let test_rdp_full_resolution () =
  (* every model's shapes resolve completely: the zoo has no nac tensors *)
  List.iter
    (fun (sp : Zoo.spec) ->
      let g = Sod2_experiments.Harness.graph_of sp in
      let r = Sod2.Rdp.analyze g in
      let rate = Sod2.Rdp.resolution_rate g r in
      if rate < 1.0 then Alcotest.failf "%s resolves only %.2f" sp.name rate)
    Zoo.all

let test_zoo_lookup () =
  Alcotest.(check int) "ten models" 10 (List.length Zoo.all);
  Alcotest.(check bool) "lookup hit" true (Zoo.by_name "yolov6" <> None);
  Alcotest.(check bool) "lookup miss" true (Zoo.by_name "resnet" = None)

let test_envs () =
  let sp = Option.get (Zoo.by_name "yolov6") in
  let min_e = Zoo.min_env sp and max_e = Zoo.max_env sp in
  Alcotest.(check (option int)) "min H" (Some 224) (Env.lookup min_e "H");
  Alcotest.(check (option int)) "max H" (Some 640) (Env.lookup max_e "H");
  (* percentiles are monotone *)
  let h p = Option.get (Env.lookup (Zoo.percentile_env sp p) "H") in
  Alcotest.(check bool) "monotone" true (h 0.0 <= h 0.5 && h 0.5 <= h 1.0)

let test_inputs () =
  let sp = Option.get (Zoo.by_name "codebert") in
  let g = Sod2_experiments.Harness.graph_of sp in
  let inputs = Zoo.make_inputs sp g (Env.of_list [ "S", 48 ]) (Rng.create 1) in
  (match inputs with
  | [ (_, t) ] ->
    Alcotest.(check (list int)) "token dims" [ 1; 48 ] (Tensor.dims t);
    Alcotest.(check bool) "token dtype" true (Tensor.dtype t = Tensor.I64);
    List.iter
      (fun v ->
        if v < 0 || v >= Codebert.vocab then Alcotest.fail "token out of vocabulary")
      (Tensor.to_int_list t)
  | _ -> Alcotest.fail "codebert has one input");
  let sp = Option.get (Zoo.by_name "yolov6") in
  let g = Sod2_experiments.Harness.graph_of sp in
  match Zoo.make_inputs sp g (Env.of_list [ "H", 224; "W", 256 ]) (Rng.create 1) with
  | [ (_, t) ] ->
    Alcotest.(check (list int)) "image dims" [ 1; 3; 224; 256 ] (Tensor.dims t);
    Alcotest.(check bool) "image dtype" true (Tensor.dtype t = Tensor.F32)
  | _ -> Alcotest.fail "yolov6 has one input"

let test_workload_determinism () =
  let sp = Option.get (Zoo.by_name "skipnet") in
  let s1 = Workload.samples ~n:10 sp and s2 = Workload.samples ~n:10 sp in
  List.iter2
    (fun (a : Workload.sample) (b : Workload.sample) ->
      Alcotest.(check (list (pair string int))) "same env" (Env.to_list a.env)
        (Env.to_list b.env);
      Alcotest.(check int) "same gate" (a.gate 17) (b.gate 17))
    s1 s2;
  (* different seeds differ somewhere *)
  let s3 = Workload.samples ~n:10 ~seed:999 sp in
  let differs =
    List.exists2
      (fun (a : Workload.sample) (b : Workload.sample) -> Env.to_list a.env <> Env.to_list b.env)
      s1 s3
  in
  Alcotest.(check bool) "seeds matter" true differs

let test_workload_ranges () =
  List.iter
    (fun (sp : Zoo.spec) ->
      List.iter
        (fun (sm : Workload.sample) ->
          List.iter
            (fun (sym, choices) ->
              match Env.lookup sm.env sym with
              | Some v ->
                if not (List.mem v choices) then
                  Alcotest.failf "%s: %s=%d outside admissible range" sp.name sym v
              | None -> Alcotest.failf "%s: %s unbound" sp.name sym)
            sp.dim_choices)
        (Workload.samples ~n:20 sp))
    Zoo.all

let test_ascending_sizes () =
  let sp = Option.get (Zoo.by_name "yolov6") in
  let sizes = Workload.ascending_sizes ~n:15 sp in
  let hs = List.map (fun (sm : Workload.sample) -> Option.get (Env.lookup sm.env "H")) sizes in
  let rec ascending = function
    | a :: b :: rest -> a < b && ascending (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "strictly ascending after dedup" true (ascending hs)

let test_gpt_decoder () =
  let g = Gpt_decoder.build () in
  let r = Sod2.Rdp.analyze g in
  Alcotest.(check bool) "fully resolved" true (Sod2.Rdp.resolution_rate g r = 1.0);
  (* the cache outputs mix both symbols: P + S *)
  (match Graph.outputs g with
  | _final :: present_k :: _ ->
    Alcotest.(check string) "present cache extent" "[1, 4, P + S, 32]"
      (Shape.to_string (Sod2.Rdp.shape r present_k))
  | _ -> Alcotest.fail "decoder outputs");
  (* one compiled artifact serves several (P, S) pairs *)
  let c = Sod2.Pipeline.compile Profile.sd888_cpu g in
  List.iter
    (fun (past, seq) ->
      let rng = Rng.create (past + seq) in
      let inputs = Gpt_decoder.make_inputs g ~past ~seq rng in
      let _trace, outs = Sod2_runtime.Executor.run_real c ~inputs in
      match outs with
      | (_, final) :: (_, pk) :: _ ->
        Alcotest.(check (list int)) "hidden dims" [ 1; seq; 128 ] (Tensor.dims final);
        Alcotest.(check (list int)) "cache grew" [ 1; 4; past + seq; 32 ] (Tensor.dims pk)
      | _ -> Alcotest.fail "decode outputs")
    [ 8, 4; 16, 1 ]

let suite =
  [
    Alcotest.test_case "all models build and match metadata" `Quick test_all_models_build;
    Alcotest.test_case "gpt decoder (§7 extension)" `Quick test_gpt_decoder;
    Alcotest.test_case "RDP fully resolves the zoo" `Quick test_rdp_full_resolution;
    Alcotest.test_case "zoo lookup" `Quick test_zoo_lookup;
    Alcotest.test_case "percentile envs" `Quick test_envs;
    Alcotest.test_case "input construction" `Quick test_inputs;
    Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
    Alcotest.test_case "workload ranges" `Quick test_workload_ranges;
    Alcotest.test_case "ascending sizes" `Quick test_ascending_sizes;
  ]
