(* Tests for the graph file format: operator codec bijection, s-expression
   parsing, and lossless round-trips of every zoo model. *)

let test_sexp_roundtrip () =
  let cases =
    [ "(a b (c 1 2) ())"; "atom"; "(nested (very (deep (x))))"; "(f 0x1.8p-3 -4)" ]
  in
  List.iter
    (fun text ->
      match Sexp.parse text with
      | Ok forms ->
        let rendered = String.concat " " (List.map Sexp.to_string forms) in
        (match Sexp.parse rendered with
        | Ok forms2 ->
          if forms <> forms2 then Alcotest.failf "unstable parse of %s" text
        | Error e -> Alcotest.failf "re-parse of %s failed: %s" text e)
      | Error e -> Alcotest.failf "parse of %s failed: %s" text e)
    cases;
  (match Sexp.parse "(unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated list accepted");
  match Sexp.parse ")" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stray paren accepted"

(* Every operator of the vocabulary round-trips through the codec. *)
let op_vocabulary : Op.t list =
  List.map (fun u -> Op.Unary u)
    [ Op.Relu; Op.LeakyRelu 0.25; Op.Sigmoid; Op.Tanh; Op.Exp; Op.Log; Op.Sqrt;
      Op.Neg; Op.Abs; Op.Erf; Op.Gelu; Op.HardSwish; Op.Softplus; Op.Floor;
      Op.Ceil; Op.Round; Op.Not; Op.Identity; Op.Sign; Op.Reciprocal; Op.Softsign ]
  @ List.map (fun bi -> Op.Binary bi)
      [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Pow; Op.Max2; Op.Min2; Op.Mod2;
        Op.Equal; Op.Less; Op.Greater; Op.And; Op.Or ]
  @ [
      Op.Clip (-1.5, 2.5); Op.Cast Tensor.F32; Op.Cast Tensor.I64; Op.Where;
      Op.MatMul;
      Op.Gemm { alpha = 0.5; beta = 1.25; trans_a = true; trans_b = false };
      Op.Conv { stride = (2, 1); pads = (1, 2, 3, 4); dilation = (1, 2); groups = 4 };
      Op.Conv1d { stride1 = 2; pads1 = (7, 7); dilation1 = 1; groups1 = 128 };
      Op.MaxPool { kernel = (3, 3); pool_stride = (2, 2); pool_pads = (1, 1, 1, 1) };
      Op.AveragePool { kernel = (2, 2); pool_stride = (2, 2); pool_pads = (0, 0, 0, 0) };
      Op.GlobalAveragePool;
      Op.BatchNorm { eps = 1e-5 }; Op.LayerNorm { eps = 1e-6 };
      Op.GroupNorm { num_groups = 8; eps = 1e-5 };
      Op.InstanceNorm { eps = 1e-5 };
      Op.Softmax { axis = -1 }; Op.LogSoftmax { axis = 1 };
      Op.Reduce { rkind = Op.Rsum; axes = [ 0; 2 ]; keepdims = true };
      Op.Reduce { rkind = Op.Rl2; axes = []; keepdims = false };
      Op.ArgMax { axis = 1; keepdims = false }; Op.ArgMin { axis = -1; keepdims = true };
      Op.CumSum { axis = 0 }; Op.Transpose [ 0; 2; 1; 3 ]; Op.Reshape;
      Op.Flatten { axis = 1 }; Op.Squeeze [ 0 ]; Op.Unsqueeze [ 0; 3 ];
      Op.Concat { axis = 2 }; Op.Split { axis = 1; sizes = [ 64; 64 ] }; Op.Slice;
      Op.Gather { axis = 0 }; Op.Pad { pad_value = 0.0 }; Op.Expand; Op.Tile;
      Op.Resize Op.Nearest; Op.Upsample { scales = [ 2; 2 ] };
      Op.DepthToSpace { block = 2 }; Op.SpaceToDepth { block = 4 };
      Op.ShapeOf; Op.SizeOf; Op.ConstantOfShape { fill = 3.25 }; Op.EyeLike; Op.Range;
      Op.OneHot { depth = 10 }; Op.TopK { axis = 0; largest = false }; Op.NonZero;
      Op.NonMaxSuppression { max_out = 100; iou_threshold = 0.5 }; Op.If; Op.Loop;
      Op.Switch { branches = 3 }; Op.Combine { branches = 3 };
    ]

let test_op_codec_bijection () =
  List.iter
    (fun op ->
      let s = Op_codec.to_sexp op in
      match Op_codec.of_sexp s with
      | Ok op2 ->
        if op <> op2 then
          Alcotest.failf "%s decodes to %s" (Op.name op) (Op.name op2)
      | Error e -> Alcotest.failf "%s failed to decode: %s" (Sexp.to_string s) e)
    op_vocabulary;
  (* unknown forms are rejected, not misparsed *)
  (match Op_codec.of_sexp (Sexp.Atom "conv") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare atom accepted");
  match Op_codec.of_sexp (Sexp.List [ Sexp.Atom "frobnicate" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op accepted"

let graphs_equal (a : Graph.t) (b : Graph.t) =
  Graph.node_count a = Graph.node_count b
  && Graph.tensor_count a = Graph.tensor_count b
  && Graph.inputs a = Graph.inputs b
  && Graph.outputs a = Graph.outputs b
  && Array.for_all2
       (fun (na : Graph.node) (nb : Graph.node) ->
         na.Graph.op = nb.Graph.op && na.Graph.inputs = nb.Graph.inputs
         && na.Graph.outputs = nb.Graph.outputs)
       (Graph.nodes a) (Graph.nodes b)
  &&
  let tensors_match = ref true in
  for tid = 0 to Graph.tensor_count a - 1 do
    (match (Graph.tensor a tid).Graph.kind, (Graph.tensor b tid).Graph.kind with
    | Graph.Input sa, Graph.Input sb -> if not (Shape.equal sa sb) then tensors_match := false
    | Graph.Const ta, Graph.Const tb -> if not (Tensor.equal ta tb) then tensors_match := false
    | Graph.Activation, Graph.Activation -> ()
    | _ -> tensors_match := false)
  done;
  !tensors_match

let test_zoo_roundtrip () =
  (* three models covering shape dynamism, a dynamic Resize, and control
     flow; the others exercise no additional format features *)
  List.iter
    (fun name ->
      let sp = Option.get (Zoo.by_name name) in
      let g = Sod2_experiments.Harness.graph_of sp in
      let text = Graph_io.to_string g in
      match Graph_io.of_string text with
      | Ok g2 ->
        if not (graphs_equal g g2) then Alcotest.failf "%s: round-trip changed the graph" sp.name;
        (* serialization is stable *)
        Alcotest.(check string) (sp.name ^ " stable") text (Graph_io.to_string g2)
      | Error e -> Alcotest.failf "%s: parse failed: %s" sp.name e)
    [ "codebert"; "yolov6"; "skipnet" ]

let test_roundtrip_preserves_execution () =
  (* the reloaded graph computes the same tensors *)
  let sp = Option.get (Zoo.by_name "codebert") in
  let g = Sod2_experiments.Harness.graph_of sp in
  let g2 = Result.get_ok (Graph_io.of_string (Graph_io.to_string g)) in
  let env = Env.of_list [ "S", 16 ] in
  let inputs = Zoo.make_inputs sp g env (Rng.create 9) in
  let run graph =
    let c = Sod2.Pipeline.compile Profile.sd888_cpu graph in
    snd (Sod2_runtime.Executor.run_real c ~inputs)
  in
  List.iter2
    (fun (t1, v1) (t2, v2) ->
      Alcotest.(check int) "same output id" t1 t2;
      if not (Tensor.approx_equal v1 v2) then Alcotest.fail "outputs differ after reload")
    (run g) (run g2)

let test_file_io () =
  let g = Sod2_experiments.Harness.graph_of (Option.get (Zoo.by_name "ranet")) in
  let path = Filename.temp_file "sod2" ".graph" in
  Graph_io.save g path;
  (match Graph_io.load path with
  | Ok g2 -> Alcotest.(check int) "nodes survive" (Graph.node_count g) (Graph.node_count g2)
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_rejects_garbage () =
  List.iter
    (fun text ->
      match Graph_io.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" text)
    [ ""; "(sod2-graph 2)"; "(sod2-graph 1) (bogus)";
      "(sod2-graph 1) (input 5 x (shape 1))";
      "(sod2-graph 1) (input 0 x (shape 1))" (* missing outputs *) ]

let suite =
  [
    Alcotest.test_case "sexp parse/print" `Quick test_sexp_roundtrip;
    Alcotest.test_case "operator codec bijection" `Quick test_op_codec_bijection;
    Alcotest.test_case "zoo round-trips losslessly" `Slow test_zoo_roundtrip;
    Alcotest.test_case "reload preserves execution" `Slow test_roundtrip_preserves_execution;
    Alcotest.test_case "file save/load" `Quick test_file_io;
    Alcotest.test_case "garbage rejected" `Quick test_rejects_garbage;
  ]
