(* Benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (printed with the paper's numbers quoted alongside)
   and then times, with Bechamel, the representative computation behind
   each experiment — one [Test.make] per table/figure — plus the core
   compiler passes.

   Usage: dune exec bench/main.exe [-- --samples N] [--no-bechamel]
          [--no-tables] [--no-kernels] [--quick] [--backend KIND] *)

open Bechamel
open Toolkit
module E = Sod2_experiments.Experiments

let samples = ref 50
let run_bechamel = ref true
let run_tables = ref true
let run_kernels = ref true
let run_arena = ref true
let arena_smoke = ref false
let engine_smoke = ref false
let engine_overload_smoke = ref false
let int8_smoke = ref false
let tune_smoke = ref false
let variant_smoke = ref false
let smoke_backend = ref None

let () =
  let rec parse = function
    | [] -> ()
    | "--samples" :: v :: rest ->
      samples := int_of_string v;
      parse rest
    | "--no-bechamel" :: rest ->
      run_bechamel := false;
      parse rest
    | "--no-tables" :: rest ->
      run_tables := false;
      parse rest
    | "--no-kernels" :: rest ->
      run_kernels := false;
      parse rest
    | "--no-arena" :: rest ->
      run_arena := false;
      parse rest
    | "--arena-smoke" :: rest ->
      (* CI mode: only the arena micro-benchmarks + equivalence check. *)
      arena_smoke := true;
      run_bechamel := false;
      run_tables := false;
      run_kernels := false;
      parse rest
    | "--kernels-smoke" :: rest ->
      (* CI mode: kernel speedup tables only — includes the f32-vs-f64
         GEMM throughput gate and writes BENCH_f32.json. *)
      run_bechamel := false;
      run_tables := false;
      run_arena := false;
      parse rest
    | "--engine-smoke" :: rest ->
      (* CI mode: engine throughput scaling + equivalence/zero-replan check. *)
      engine_smoke := true;
      run_bechamel := false;
      run_tables := false;
      run_kernels := false;
      run_arena := false;
      parse rest
    | "--int8-smoke" :: rest ->
      (* CI mode: int8-vs-f32 GEMM gate at 256³ (int8 must be ≥1.5x
         faster on the memory-bound shape) + a bit-exactness spot check;
         writes BENCH_int8.json. *)
      int8_smoke := true;
      run_bechamel := false;
      run_tables := false;
      run_kernels := false;
      run_arena := false;
      parse rest
    | "--tune-smoke" :: rest ->
      (* CI mode: measured GEMM tuning at one fat and one skinny shape —
         default vs analytical-pick vs measured-pick timings, gated on the
         measured pick not losing to the analytical one; writes
         BENCH_tune.json. *)
      tune_smoke := true;
      run_bechamel := false;
      run_tables := false;
      run_kernels := false;
      run_arena := false;
      parse rest
    | "--variant-smoke" :: rest ->
      (* CI mode: guarded single-plan serving vs ahead-of-time multi-version
         plan serving (vet-once + pruned per-outcome plans) on the gated
         models, gated on a >=1.15x gated-path geomean; writes
         BENCH_variants.json. *)
      variant_smoke := true;
      run_bechamel := false;
      run_tables := false;
      run_kernels := false;
      run_arena := false;
      parse rest
    | "--engine-overload-smoke" :: rest ->
      (* CI mode: flood a 1-worker engine past its queue cap with deadlines
         and assert it sheds instead of deadlocking. *)
      engine_overload_smoke := true;
      run_bechamel := false;
      run_tables := false;
      run_kernels := false;
      run_arena := false;
      parse rest
    | "--backend" :: v :: rest ->
      (match Sod2_runtime.Backend.kind_of_string v with
      | Some k -> smoke_backend := Some k
      | None -> invalid_arg ("unknown backend " ^ v));
      parse rest
    | "--quick" :: rest ->
      samples := 10;
      parse rest
    | arg :: _ -> invalid_arg ("unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Fixtures shared by the micro-benchmarks                             *)
(* ------------------------------------------------------------------ *)

let cpu = Profile.sd888_cpu
let gpu = Profile.sd888_gpu

let fixture name =
  match Zoo.by_name name with
  | Some sp -> sp
  | None -> assert false

let yolo = fixture "yolov6"
let bert = fixture "codebert"
let snet = fixture "skipnet"

let graph_of = Sod2_experiments.Harness.graph_of

let sess kind profile sp =
  let g = graph_of sp in
  Framework.create kind profile g ~max_dims:(Zoo.input_dims sp g (Zoo.max_env sp))

let sample sp p idx = Workload.sample_at sp ~percentile:p ~idx

let run_once session sp (sm : Workload.sample) =
  Framework.run session ~input_dims:(Zoo.input_dims sp (graph_of sp) sm.env) ~gate:sm.gate

let tests () =
  let yolo_g = graph_of yolo and bert_g = graph_of bert in
  let yolo_sod2 = sess Framework.Sod2_fw cpu yolo in
  let yolo_mnn = sess Framework.Mnn cpu yolo in
  let yolo_mnn_gpu = sess Framework.Mnn gpu yolo in
  let bert_sod2 = sess Framework.Sod2_fw cpu bert in
  let snet_sod2 = sess Framework.Sod2_fw cpu snet in
  let snet_tfl = sess Framework.Tflite cpu snet in
  let snet_dnnf = sess Framework.Dnnfusion cpu snet in
  let yolo_sod2_835 = sess Framework.Sod2_fw Profile.sd835_cpu yolo in
  let bert_rdp = Sod2.Rdp.analyze bert_g in
  let decoder_g = Gpt_decoder.build () in
  let decoder_sod2 =
    Framework.create Framework.Sod2_fw cpu decoder_g
      ~max_dims:(Gpt_decoder.input_dims decoder_g ~past:1024 ~seq:16)
  in
  let mid = sample yolo 0.5 0 and mid_s = sample snet 0.5 0 in
  let snet_lifetimes =
    let trace =
      Sod2_runtime.Executor.run_dry (Framework.compiled snet_sod2)
        ~gate:mid_s.Workload.gate
        ~input_dims:(Zoo.input_dims snet (graph_of snet) mid_s.Workload.env)
    in
    List.map
      (fun (e : Sod2_runtime.Executor.tensor_event) ->
        e.Sod2_runtime.Executor.te_bytes, e.te_alloc, e.te_free)
      trace.Sod2_runtime.Executor.events
  in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    (* core passes *)
    t "core/rdp-analysis(codebert)" (fun () -> Sod2.Rdp.analyze bert_g);
    t "core/fusion-rdp(codebert)" (fun () -> Sod2.Fusion.plan bert_g bert_rdp);
    t "core/autotune-ga(gemm)" (fun () ->
        Sod2.Autotune.tune cpu (Rng.create 7) ~m:128 ~n:512 ~k:128);
    (* one per table / figure *)
    t "table1/mnn-reinit-shape-change" (fun () ->
        ignore (run_once yolo_mnn yolo (sample yolo 0.3 0));
        run_once yolo_mnn yolo (sample yolo 0.8 1));
    t "table5/sod2-memory-accounting" (fun () ->
        (run_once yolo_sod2 yolo mid).Framework.peak_bytes);
    t "table6/sod2-dry-inference" (fun () -> run_once yolo_sod2 yolo mid);
    t "table7/percentile-run" (fun () -> run_once yolo_sod2 yolo (sample yolo 1.0 2));
    t "fig5/ablation-compile" (fun () ->
        Sod2.Pipeline.compile ~flags:{ Sod2.Pipeline.no_opts with fusion = true } cpu
          yolo_g);
    t "fig6/ablation-run" (fun () -> run_once yolo_mnn yolo mid);
    t "fig7/fusion-static-vs-rdp" (fun () ->
        Sod2.Fusion.plan ~mode:Sod2.Fusion.Static_only bert_g bert_rdp);
    t "fig8/exec-partitioning" (fun () ->
        let fp = Sod2.Fusion.plan bert_g bert_rdp in
        Sod2.Exec_plan.plan bert_g bert_rdp fp ~env:(Env.of_list [ "S", 128 ]));
    t "fig9/all-paths-run" (fun () ->
        Framework.run ~control:Sod2_runtime.Executor.All_paths snet_sod2
          ~input_dims:(Zoo.input_dims snet (graph_of snet) mid_s.Workload.env)
          ~gate:(Workload.fixed_gates 1));
    t "fig10/mnn-gpu-size-sweep-point" (fun () -> run_once yolo_mnn_gpu yolo mid);
    t "fig11/tflite-budget-run" (fun () ->
        Framework.run_with_budget snet_tfl ~budget_bytes:(1 lsl 20)
          ~input_dims:(Zoo.input_dims snet (graph_of snet) mid_s.Workload.env)
          ~gate:mid_s.Workload.gate);
    t "fig12/dnnfusion-frozen-run" (fun () -> run_once snet_dnnf snet mid_s);
    t "fig13/sd835-run" (fun () -> run_once yolo_sod2_835 yolo mid);
    t "memplan/peak-first-placement" (fun () ->
        Sod2.Mem_plan.arena_for Sod2.Mem_plan.Peak_first ~lifetimes:snet_lifetimes);
    (* extensions *)
    t "ext/llm-decode-step" (fun () ->
        Framework.run decoder_sod2 ~gate:(Workload.fixed_gates 0)
          ~input_dims:(Gpt_decoder.input_dims decoder_g ~past:128 ~seq:1));
    t "ext/graph-io-roundtrip(skipnet)" (fun () ->
        let g = graph_of snet in
        match Graph_io.of_string (Graph_io.to_string g) with
        | Ok g2 -> Graph.node_count g2
        | Error e -> failwith e);
    (* real interpretation exercising the kernels end to end *)
    t "runtime/real-exec(codebert-S32)" (fun () ->
        let env = Env.of_list [ "S", 32 ] in
        let inputs = Zoo.make_inputs bert bert_g env (Rng.create 5) in
        Sod2_runtime.Executor.run_real (Framework.compiled bert_sod2) ~inputs |> ignore);
  ]

(* ------------------------------------------------------------------ *)
(* Kernel backends: naive vs blocked vs parallel                       *)
(* ------------------------------------------------------------------ *)

module RT = Sod2_runtime

(* Wall-clock (not CPU) time so the domain pool is credited for overlap. *)
let time_runs ?(budget = 0.3) f =
  f ();
  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  f ();
  let once = Unix.gettimeofday () -. t0 in
  let reps = max 2 (min 60 (int_of_float (budget /. Float.max 1e-6 once))) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

(* Deterministic operand storage in the requested element kind.  The
   default is F32 — the kind compiled artifacts now actually run in. *)
let filled ?(dt = Tensor.F32) len =
  let b = Tensor.fbuf_create dt len in
  for i = 0 to len - 1 do
    Tensor.fbuf_set b i ((float_of_int ((i * 7919) mod 1009) /. 1009.0) -. 0.5)
  done;
  b

let kernel_speedups () =
  let versions = Sod2.Multi_version.build cpu in
  let mk kind = RT.Backend.create ~versions kind in
  let naive = mk RT.Backend.Naive in
  let blocked = mk RT.Backend.Blocked in
  let parallel =
    RT.Backend.create ~versions ~threads:cpu.Profile.cores RT.Backend.Parallel
  in
  Fun.protect
    ~finally:(fun () -> RT.Backend.shutdown parallel)
    (fun () ->
      Printf.printf
        "\n=== Kernel backends: GEMM/Conv per shape class (%d domains) ===\n"
        (RT.Backend.pool_size parallel);
      Printf.printf "  %-26s %10s %10s %10s %7s %7s\n" "case" "naive ms" "blocked"
        "parallel" "blk x" "par x";
      let row case tn tb tp =
        Printf.printf "  %-26s %10.3f %10.3f %10.3f %6.2fx %6.2fx\n" case
          (tn *. 1e3) (tb *. 1e3) (tp *. 1e3) (tn /. tb) (tn /. tp)
      in
      let time_gemm ?dt be m n k =
        let a = filled ?dt (m * k) and b = filled ?dt (k * n) in
        let c = Tensor.fbuf_create (Tensor.fbuf_dtype a) (m * n) in
        time_runs (fun () ->
            Tensor.fbuf_fill c 0 (m * n) 0.0;
            RT.Backend.gemm_kernel be ~m ~n ~k ~a ~ao:0 ~b ~bo:0 ~c ~co:0)
      in
      let gemm_case name m n k =
        let tn = time_gemm naive m n k in
        let tb = time_gemm blocked m n k in
        let tp = time_gemm parallel m n k in
        row (Printf.sprintf "%s %dx%dx%d" name m n k) tn tb tp
      in
      gemm_case "gemm/fat" 512 512 256;
      gemm_case "gemm/regular" 256 256 256;
      gemm_case "gemm/skinny" 4 512 256;
      gemm_case "gemm/tiny" 16 16 16;
      (* f32 vs f64 storage on the blocked kernel: halving the element size
         must not cost throughput (the packed inner loops are unchanged);
         the ratio is asserted and recorded in BENCH_f32.json. *)
      let m, n, k = 256, 256, 256 in
      let t32 = time_gemm ~dt:Tensor.F32 blocked m n k in
      let t64 = time_gemm ~dt:Tensor.F64 blocked m n k in
      Printf.printf "  %-26s %10s %10.3f %10.3f %6.2fx\n"
        "gemm/f32-vs-f64 256^3" "" (t64 *. 1e3) (t32 *. 1e3) (t64 /. t32);
      let oc = open_out "BENCH_f32.json" in
      Printf.fprintf oc
        "{\n  \"gemm_256\": {\"f32_ms\": %.4f, \"f64_ms\": %.4f, \
         \"f32_over_f64\": %.3f}\n}\n"
        (t32 *. 1e3) (t64 *. 1e3) (t32 /. t64);
      close_out oc;
      Printf.printf "  wrote BENCH_f32.json\n";
      if t32 > t64 *. 1.15 then begin
        Printf.printf "  f32 GEMM slower than the f64 baseline (%.2fx) — FAIL\n"
          (t32 /. t64);
        exit 1
      end;
      let rng = Rng.create 17 in
      let x = Tensor.rand_uniform rng [ 1; 64; 28; 28 ] in
      let w = Tensor.rand_uniform rng [ 64; 64; 3; 3 ] in
      let conv be () =
        ignore
          (RT.Backend.conv2d be ~stride:(1, 1) ~pad:(1, 1, 1, 1) ~dilation:(1, 1)
             ~groups:1 x w None)
      in
      let tn = time_runs (conv naive) in
      let tb = time_runs (conv blocked) in
      let tp = time_runs (conv parallel) in
      row "conv/64x64x3x3 28x28" tn tb tp)

(* ------------------------------------------------------------------ *)
(* Fused-group execution: whole fusion groups as single kernels        *)
(* ------------------------------------------------------------------ *)

let geomean = function
  | [] -> 1.0
  | xs -> exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

(* An 8-op pointwise chain: every intermediate is fusion-internal, so the
   fused kernel touches memory once instead of eight times. *)
let chain_graph dims =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints dims) in
  let s = Graph.Builder.node1 b (Op.Unary Op.Sigmoid) [ x ] in
  let m = Graph.Builder.node1 b (Op.Binary Op.Mul) [ s; x ] in
  let ge = Graph.Builder.node1 b (Op.Unary Op.Gelu) [ m ] in
  let cl = Graph.Builder.node1 b (Op.Clip (0.05, 0.95)) [ ge ] in
  let th = Graph.Builder.node1 b (Op.Unary Op.Tanh) [ cl ] in
  let sq = Graph.Builder.node1 b (Op.Binary Op.Mul) [ th; th ] in
  let ad = Graph.Builder.node1 b (Op.Binary Op.Add) [ sq; x ] in
  let out = Graph.Builder.node1 b (Op.Unary Op.Relu) [ ad ] in
  Graph.Builder.set_outputs b [ out ];
  Graph.Builder.finish b

let conv_bn_relu_graph () =
  let b = Graph.Builder.create () in
  let rng = Rng.create 23 in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 1; 32; 28; 28 ]) in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_uniform rng [ 64; 32; 3; 3 ]) in
  let bias = Graph.Builder.const b ~name:"bias" (Tensor.rand_uniform rng [ 64 ]) in
  let scale = Graph.Builder.const b ~name:"scale" (Tensor.rand_uniform rng [ 64 ]) in
  let bn_b = Graph.Builder.const b ~name:"bn_b" (Tensor.rand_uniform rng [ 64 ]) in
  let mean = Graph.Builder.const b ~name:"mean" (Tensor.rand_uniform rng [ 64 ]) in
  let var =
    Graph.Builder.const b ~name:"var"
      (Tensor.map_f (fun v -> v +. 0.5) (Tensor.rand_uniform rng [ 64 ]))
  in
  let conv =
    Graph.Builder.node1 b
      (Op.Conv { stride = 1, 1; pads = 1, 1, 1, 1; dilation = 1, 1; groups = 1 })
      [ x; w; bias ]
  in
  let bn =
    Graph.Builder.node1 b (Op.BatchNorm { eps = 1e-5 }) [ conv; scale; bn_b; mean; var ]
  in
  let out = Graph.Builder.node1 b (Op.Unary Op.Relu) [ bn ] in
  Graph.Builder.set_outputs b [ out ];
  Graph.Builder.finish b

let gemm_bias_gelu_graph () =
  let b = Graph.Builder.create () in
  let rng = Rng.create 29 in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 128; 256 ]) in
  let w = Graph.Builder.const b ~name:"w" (Tensor.rand_uniform rng [ 256; 256 ]) in
  let bias = Graph.Builder.const b ~name:"bias" (Tensor.rand_uniform rng [ 256 ]) in
  let mm = Graph.Builder.node1 b Op.MatMul [ x; w ] in
  let ad = Graph.Builder.node1 b (Op.Binary Op.Add) [ mm; bias ] in
  let out = Graph.Builder.node1 b (Op.Unary Op.Gelu) [ ad ] in
  Graph.Builder.set_outputs b [ out ];
  Graph.Builder.finish b

let fused_speedups () =
  Printf.printf
    "\n=== Fused-group execution: per-op blocked vs single fused kernel ===\n";
  Printf.printf "  %-28s %10s %10s %8s %12s\n" "group" "blocked ms" "fused ms" "speedup"
    "avoided KB";
  let bench_case name g =
    let c = Sod2.Pipeline.compile cpu g in
    let inputs =
      List.map
        (fun tid ->
          match Shape.as_ints (Option.get (Graph.input_shape g tid)) with
          | Some dims -> tid, Tensor.rand_uniform (Rng.create 3) dims
          | None -> assert false)
        (Graph.inputs g)
    in
    let blocked = RT.Backend.for_compiled RT.Backend.Blocked c in
    let fused = RT.Backend.for_compiled RT.Backend.Fused c in
    Fun.protect
      ~finally:(fun () ->
        RT.Backend.shutdown blocked;
        RT.Backend.shutdown fused)
      (fun () ->
        let tb =
          time_runs (fun () ->
              ignore (RT.Executor.run_real ~backend:blocked c ~inputs))
        in
        let tf =
          time_runs (fun () -> ignore (RT.Executor.run_real ~backend:fused c ~inputs))
        in
        (* traffic the fused kernel never materializes: the trace's
           group-internal bytes *)
        let trace, _ = RT.Executor.run_real ~backend:fused c ~inputs in
        let avoided =
          List.fold_left
            (fun acc (s : RT.Executor.group_exec) -> acc + s.RT.Executor.internal_bytes)
            0 trace.RT.Executor.steps
        in
        let fs = RT.Backend.fused_stats fused in
        if fs.RT.Backend.misses = 0 then
          Printf.printf "  %-28s (no fused kernel compiled!)\n" name
        else
          Printf.printf "  %-28s %10.3f %10.3f %7.2fx %12.1f\n" name (tb *. 1e3)
            (tf *. 1e3) (tb /. tf)
            (float_of_int avoided /. 1024.0);
        tb /. tf)
  in
  let chain = bench_case "pointwise-chain 1x64x56x56" (chain_graph [ 1; 64; 56; 56 ]) in
  let conv = bench_case "conv3x3+bn+relu 32->64 28x28" (conv_bn_relu_graph ()) in
  let gemm = bench_case "matmul+bias+gelu 128x256x256" (gemm_bias_gelu_graph ()) in
  Printf.printf "  geomean speedup (chain, conv): %.2fx   (all three: %.2fx)\n"
    (geomean [ chain; conv ])
    (geomean [ chain; conv; gemm ])

(* ------------------------------------------------------------------ *)
(* Arena vs malloc: planned destination-passing execution              *)
(* ------------------------------------------------------------------ *)

(* Memory-bound pointwise ladder: each layer is Add then Mul, and the
   layer input feeds both ops — two consumers, so fusion cannot melt a
   layer into its predecessor.  Every layer boundary therefore
   materializes with an arena slot, per-element arithmetic is two cheap
   ops, and the dominant malloc-mode cost (allocation + zero-fill + GC of
   one full tensor per layer) is exactly what destination-passing
   removes. *)
let ladder_graph ~layers dims =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints dims) in
  let c =
    Graph.Builder.const b ~name:"c"
      (Tensor.map_f (fun v -> (0.2 *. v) +. 1.0) (Tensor.rand_uniform (Rng.create 11) dims))
  in
  let z = ref x in
  for _ = 1 to layers do
    let a = Graph.Builder.node1 b (Op.Binary Op.Add) [ !z; c ] in
    z := Graph.Builder.node1 b (Op.Binary Op.Mul) [ !z; a ]
  done;
  Graph.Builder.set_outputs b [ !z ];
  Graph.Builder.finish b

(* Low-arithmetic-intensity conv microbench: each layer is a shallow 1x1
   convolution feeding a Sub recurrence stream [a_j = a_{j-1} - a_{j-2}].
   Every stream tensor (and the conv output) has two consumers, so fusion
   cannot form groups around them: each op executes on the per-op
   destination-passing path and each boundary is an arena-planned tensor —
   malloc mode pays one full-tensor allocation per op that the arena
   removes.  The recurrence x_j = x_{j-1} - x_{j-2} is periodic (period 6),
   so values stay bounded over arbitrarily many steps. *)
let conv_stream_graph ~layers ~subs ~ch ~hw () =
  let b = Graph.Builder.create () in
  let rng = Rng.create 23 in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints [ 1; ch; hw; hw ]) in
  (* [p]/[q] are the previous layer's last two stream values; feeding [q]
     into this layer's first Sub gives every stream tensor (except the
     final pair) a second consumer, which keeps fusion from folding the
     tail into a group whose internal tensor would lose its arena slot. *)
  let p = ref x and q = ref x in
  for i = 1 to layers do
    let w =
      Graph.Builder.const b ~name:(Printf.sprintf "w%d" i)
        (Tensor.map_f (fun v -> (v -. 0.5) /. float_of_int ch) (Tensor.rand_uniform rng [ ch; ch; 1; 1 ]))
    in
    let bias =
      Graph.Builder.const b ~name:(Printf.sprintf "cb%d" i) (Tensor.rand_uniform rng [ ch ])
    in
    let conv =
      Graph.Builder.node1 b
        (Op.Conv { stride = 1, 1; pads = 0, 0, 0, 0; dilation = 1, 1; groups = 1 })
        [ !p; w; bias ]
    in
    let prev = ref conv and cur = ref (Graph.Builder.node1 b (Op.Binary Op.Sub) [ conv; !q ]) in
    for _ = 2 to subs do
      let nxt = Graph.Builder.node1 b (Op.Binary Op.Sub) [ !cur; !prev ] in
      prev := !cur;
      cur := nxt
    done;
    p := !cur;
    q := !prev
  done;
  Graph.Builder.set_outputs b [ !p ];
  Graph.Builder.finish b

(* Pure pointwise Sub-recurrence chain: the two-consumer structure defeats
   fusion entirely, so every step is a singleton op whose output is
   arena-planned — per-op destination execution with no boxed intermediates
   and no copy-outs (except the terminal pair feeding the graph output). *)
let chain_stream_graph ~steps dims =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.input b ~name:"x" (Shape.of_ints dims) in
  let c =
    Graph.Builder.const b ~name:"c"
      (Tensor.map_f (fun v -> 0.5 *. v) (Tensor.rand_uniform (Rng.create 17) dims))
  in
  let prev = ref x and cur = ref (Graph.Builder.node1 b (Op.Binary Op.Sub) [ x; c ]) in
  for _ = 2 to steps do
    let nxt = Graph.Builder.node1 b (Op.Binary Op.Sub) [ !cur; !prev ] in
    prev := !cur;
    cur := nxt
  done;
  Graph.Builder.set_outputs b [ !cur ];
  Graph.Builder.finish b

let close_outputs a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ta, va) (tb, vb) ->
         ta = tb
         && Tensor.dims va = Tensor.dims vb
         &&
         let da = Tensor.data_f va and db = Tensor.data_f vb in
         let ok = ref true in
         Array.iteri
           (fun i x ->
             if Float.abs (x -. db.(i)) > 1e-4 *. (1.0 +. Float.abs x) then ok := false)
           da;
         !ok)
       a b

type arena_case = {
  ac_model : string;
  ac_arena_bytes : int;
  ac_instantiate_us : float;
  ac_cached_us : float;
  ac_rows : (string * float * float) list;  (* backend, malloc s, arena s *)
}

let arena_bench ~smoke () =
  Printf.printf "\n=== Arena vs malloc: planned destination-passing execution ===\n";
  Printf.printf "  %-26s %-8s %10s %10s %8s\n" "model" "backend" "malloc ms" "arena ms"
    "speedup";
  let cases = ref [] in
  let equivalence_ok = ref true in
  let bench_model ?(check = false) name g ~env ~inputs =
    let c = Sod2.Pipeline.compile cpu g in
    let instantiate_us =
      time_runs (fun () ->
          ignore (Sod2.Mem_plan.instantiate c.Sod2.Pipeline.mem_symbolic ~env))
      *. 1e6
    in
    let cached_us =
      time_runs (fun () -> ignore (Sod2.Pipeline.instantiated_plan c env)) *. 1e6
    in
    let arena_bytes = (Sod2.Pipeline.instantiated_plan c env).Sod2.Mem_plan.arena_bytes in
    let reference = ref None in
    let rows =
      List.map
        (fun kind ->
          let be = RT.Backend.for_compiled kind c in
          Fun.protect
            ~finally:(fun () -> RT.Backend.shutdown be)
            (fun () ->
              (* Steady state: one persistent grow-only arena, plan served
                 from the binding cache after the warm-up run inside
                 [time_runs].  Modes are measured in alternating rounds and
                 the minimum kept, so scheduler/GC noise does not land on
                 one mode only. *)
              let arena = RT.Arena.create () in
              let run_m () = ignore (RT.Executor.run_real ~backend:be c ~inputs) in
              let run_a () = ignore (RT.Engine.run_arena ~backend:be ~arena c ~env ~inputs) in
              let tm = ref infinity and ta = ref infinity in
              for _ = 1 to 5 do
                (* Collect before each window so neither mode is billed for
                   the other's garbage. *)
                Gc.full_major ();
                tm := Float.min !tm (time_runs ~budget:0.12 run_m);
                Gc.full_major ();
                ta := Float.min !ta (time_runs ~budget:0.12 run_a)
              done;
              let tm = !tm and ta = !ta in
              if check then begin
                let r = RT.Engine.run_arena ~backend:be ~arena c ~env ~inputs in
                (match !reference with
                | None ->
                  let _, outs = RT.Executor.run_real c ~inputs in
                  reference := Some outs
                | Some _ -> ());
                let ok = close_outputs (Option.get !reference) r.RT.Engine.outputs in
                if not ok then begin
                  equivalence_ok := false;
                  Printf.printf "  %-26s EQUIVALENCE FAILURE on %s arena outputs!\n" name
                    (RT.Backend.kind_name kind)
                end
              end;
              Printf.printf "  %-26s %-8s %10.3f %10.3f %7.2fx\n" name
                (RT.Backend.kind_name kind) (tm *. 1e3) (ta *. 1e3) (tm /. ta);
              RT.Backend.kind_name kind, tm, ta))
        [ RT.Backend.Naive; RT.Backend.Blocked; RT.Backend.Fused ]
    in
    cases :=
      { ac_model = name; ac_arena_bytes = arena_bytes; ac_instantiate_us = instantiate_us;
        ac_cached_us = cached_us; ac_rows = rows }
      :: !cases
  in
  let chain_dims = [ 256; 1024 ] in
  bench_model ~check:true "chain-stream-256x1024" (chain_stream_graph ~steps:16 chain_dims)
    ~env:Env.empty
    ~inputs:[ 0, Tensor.rand_uniform (Rng.create 3) chain_dims ];
  bench_model ~check:true "chain-ladder-256x1024" (ladder_graph ~layers:8 chain_dims)
    ~env:Env.empty
    ~inputs:[ 0, Tensor.rand_uniform (Rng.create 3) chain_dims ];
  bench_model ~check:true "conv1x1-stream-4x64x64"
    (conv_stream_graph ~layers:5 ~subs:28 ~ch:4 ~hw:64 ())
    ~env:Env.empty
    ~inputs:[ 0, Tensor.rand_uniform (Rng.create 3) [ 1; 4; 64; 64 ] ];
  if not smoke then begin
    let bert_g = graph_of bert in
    let env = Env.of_list [ "S", 32 ] in
    bench_model "codebert-S32" bert_g ~env ~inputs:(Zoo.make_inputs bert bert_g env (Rng.create 5))
  end;
  (* machine-readable trajectory: BENCH_arena.json *)
  let oc = open_out "BENCH_arena.json" in
  Printf.fprintf oc "{\n  \"benchmarks\": [\n";
  let cases = List.rev !cases in
  List.iteri
    (fun i case ->
      Printf.fprintf oc
        "    {\"model\": %S, \"arena_bytes\": %d, \"plan_instantiate_us\": %.2f, \
         \"plan_cached_lookup_us\": %.3f,\n     \"backends\": [" case.ac_model
        case.ac_arena_bytes case.ac_instantiate_us case.ac_cached_us;
      List.iteri
        (fun j (backend, tm, ta) ->
          Printf.fprintf oc
            "%s{\"backend\": %S, \"malloc_ms\": %.4f, \"arena_ms\": %.4f, \
             \"speedup\": %.3f}"
            (if j = 0 then "" else ", ")
            backend (tm *. 1e3) (ta *. 1e3) (tm /. ta))
        case.ac_rows;
      Printf.fprintf oc "]}%s\n" (if i = List.length cases - 1 then "" else ","))
    cases;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_arena.json\n";
  if not !equivalence_ok then begin
    Printf.printf "  arena equivalence check FAILED\n";
    exit 1
  end
  else Printf.printf "  arena outputs match the reference executor\n"

(* ------------------------------------------------------------------ *)
(* Engine: concurrent serving throughput vs sequential run_real        *)
(* ------------------------------------------------------------------ *)

(* The arena-friendly serving workload: the Sub-recurrence stream of
   [chain_stream_graph], but with a symbolic batch dimension so requests
   carry genuinely different shape bindings and exercise the per-binding
   plan cache.  Two consumers per stream tensor defeat fusion, so every
   step is one arena-planned destination kernel. *)
let sym_stream_graph ~steps ~cols () =
  let b = Graph.Builder.create () in
  let x =
    Graph.Builder.input b ~name:"x" (Shape.of_dims [ Dim.of_sym "B"; Dim.of_int cols ])
  in
  let c =
    Graph.Builder.const b ~name:"c"
      (Tensor.map_f (fun v -> 0.5 *. v) (Tensor.rand_uniform (Rng.create 17) [ cols ]))
  in
  let prev = ref x and cur = ref (Graph.Builder.node1 b (Op.Binary Op.Sub) [ x; c ]) in
  for _ = 2 to steps do
    let nxt = Graph.Builder.node1 b (Op.Binary Op.Sub) [ !cur; !prev ] in
    prev := !cur;
    cur := nxt
  done;
  Graph.Builder.set_outputs b [ !cur ];
  Graph.Builder.finish b

let engine_bench () =
  Printf.printf "\n=== Engine: concurrent serving vs sequential run_real ===\n";
  let cols = 256 and steps = 256 and requests = 32 in
  let g = sym_stream_graph ~steps ~cols () in
  let c = Sod2.Pipeline.compile cpu g in
  (* One deterministic input per binding, so every same-binding request is
     comparable against a single precomputed reference output. *)
  let samples =
    List.map
      (fun bsz ->
        let env = Env.of_list [ "B", bsz ] in
        let inputs = [ 0, Tensor.rand_uniform (Rng.create (100 + bsz)) [ bsz; cols ] ] in
        let reference = RT.Reference.run g ~inputs in
        env, inputs, reference)
      [ 192; 224; 256; 288 ]
  in
  let nbindings = List.length samples in
  let stream = List.init requests (fun i -> List.nth samples (i mod nbindings)) in
  let bit_identical outs ref_outs =
    List.length outs = List.length ref_outs
    && List.for_all2
         (fun (ta, va) (tb, vb) ->
           ta = tb && Tensor.dims va = Tensor.dims vb
           && Tensor.data_f va = Tensor.data_f vb)
         outs ref_outs
  in
  let ok = ref true in
  let zero_miss = ref true in
  (* Sequential baseline: the historical one-shot malloc path, one request
     at a time. *)
  let seq_time =
    ignore (RT.Executor.run_real c ~inputs:(let _, i, _ = List.hd stream in i));
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, inputs, _) -> ignore (RT.Executor.run_real c ~inputs)) stream;
    Unix.gettimeofday () -. t0
  in
  List.iter
    (fun (_, inputs, reference) ->
      let _, outs = RT.Executor.run_real c ~inputs in
      if not (bit_identical outs reference) then begin
        ok := false;
        Printf.printf "  sequential run_real EQUIVALENCE FAILURE vs reference!\n"
      end)
    samples;
  Printf.printf "  %d requests x %d-step stream, %d distinct bindings\n" requests steps
    nbindings;
  Printf.printf "  sequential run_real: %8.1f ms  (%.1f req/s)\n" (seq_time *. 1e3)
    (float_of_int requests /. seq_time);
  let cfg =
    { RT.Executor.default_config with RT.Executor.memory = RT.Executor.Mem_arena }
  in
  let misses () = Profile.Counters.count ~profile:cpu.Profile.name ~kind:"plan-cache-miss" in
  let sweep workers =
    let eng = RT.Engine.create ~workers ~max_batch:4 ~config:cfg c in
    (* Warm up: every binding a few times per worker, so the shared plan
       cache and each worker's grow-only arena reach steady state. *)
    for _ = 1 to 2 * workers do
      List.iter (fun (env, inputs, _) -> ignore (RT.Engine.infer eng ~env ~inputs)) samples
    done;
    let miss0 = misses () in
    let t0 = Unix.gettimeofday () in
    let tickets =
      List.map (fun (env, inputs, _) -> RT.Engine.submit eng ~env ~inputs) stream
    in
    let results = List.map (RT.Engine.await eng) tickets in
    let dt = Unix.gettimeofday () -. t0 in
    let fresh_misses = misses () - miss0 in
    List.iter2
      (fun (_, _, reference) (r : RT.Engine.result) ->
        if not (bit_identical r.RT.Engine.outputs reference) then begin
          ok := false;
          Printf.printf "  engine (workers=%d) EQUIVALENCE FAILURE vs reference!\n" workers
        end)
      stream results;
    if fresh_misses <> 0 then begin
      zero_miss := false;
      Printf.printf "  engine (workers=%d): %d plan-cache misses after warmup!\n" workers
        fresh_misses
    end;
    let st = RT.Engine.stats eng in
    RT.Engine.shutdown eng;
    Printf.printf
      "  engine %d worker%s:     %8.1f ms  (%.1f req/s, %.2fx vs sequential, %d batched)\n"
      workers
      (if workers = 1 then " " else "s")
      (dt *. 1e3)
      (float_of_int requests /. dt)
      (seq_time /. dt) st.RT.Engine.batched;
    workers, dt, st
  in
  (* Worker counts follow the host: 1, half the cores, all the cores —
     the hardcoded 1/2/4 sweep made a 4-worker run on a 1-CPU box look
     like an engine regression when it was just oversubscription.  2 is
     always included so the sweep exercises actual concurrency (shared
     plan cache, micro-batching) even when recommended_domain_count
     reports 1. *)
  let host_cores = Domain.recommended_domain_count () in
  let worker_counts =
    List.sort_uniq compare [ 1; 2; max 1 (host_cores / 2); host_cores ]
  in
  let sweeps = List.map sweep worker_counts in
  let wmax, dtmax, _ = List.nth sweeps (List.length sweeps - 1) in
  Printf.printf "  throughput at %d workers vs sequential: %.2fx (host has %d cores)\n"
    wmax (seq_time /. dtmax) host_cores;
  let oc = open_out "BENCH_engine.json" in
  Printf.fprintf oc
    "{\n  \"workload\": {\"steps\": %d, \"cols\": %d, \"requests\": %d, \"bindings\": %d},\n"
    steps cols requests nbindings;
  Printf.fprintf oc "  \"host_cores\": %d,\n" host_cores;
  Printf.fprintf oc "  \"sequential_ms\": %.3f,\n  \"engine\": [\n" (seq_time *. 1e3);
  List.iteri
    (fun i (workers, dt, (st : RT.Engine.stats)) ->
      Printf.fprintf oc
        "    {\"workers\": %d, \"wall_ms\": %.3f, \"req_per_s\": %.1f, \"speedup\": \
         %.3f, \"batched\": %d, \"queue_peak\": %d, \"mean_latency_ms\": %.3f}%s\n"
        workers (dt *. 1e3)
        (float_of_int requests /. dt)
        (seq_time /. dt) st.RT.Engine.batched st.RT.Engine.queue_peak
        (st.RT.Engine.total_latency_us /. float_of_int (max 1 st.RT.Engine.completed) /. 1e3)
        (if i = List.length sweeps - 1 then "" else ","))
    sweeps;
  Printf.fprintf oc "  ],\n  \"outputs_bit_identical\": %b, \"zero_miss_steady_state\": %b\n}\n"
    !ok !zero_miss;
  close_out oc;
  Printf.printf "  wrote BENCH_engine.json\n";
  if not !ok then begin
    Printf.printf "  engine equivalence check FAILED\n";
    exit 1
  end;
  if not !zero_miss then begin
    Printf.printf "  steady-state zero-replan check FAILED\n";
    exit 1
  end;
  Printf.printf "  all outputs bit-identical to Reference; zero steady-state plan misses\n"

(* Overload smoke: flood a 1-worker engine far past its queue cap with
   per-request deadlines and a shed-oldest policy.  The assertions are
   liveness and accounting, not throughput: every ticket settles (no
   deadlock), the overflow is shed or expired rather than silently
   dropped, completed+failed+shed+rejected+expired = submitted, the
   completed outputs are bit-identical to Reference, and the latency
   percentiles come out ordered. *)
let engine_overload_bench () =
  Printf.printf "\n=== Engine: overload (bounded queue + deadlines, 1 worker) ===\n";
  let cols = 256 and steps = 128 and requests = 64 and queue_cap = 8 in
  let g = sym_stream_graph ~steps ~cols () in
  let c = Sod2.Pipeline.compile cpu g in
  let samples =
    List.map
      (fun bsz ->
        let env = Env.of_list [ "B", bsz ] in
        let inputs = [ 0, Tensor.rand_uniform (Rng.create (100 + bsz)) [ bsz; cols ] ] in
        let reference = RT.Reference.run g ~inputs in
        env, inputs, reference)
      [ 192; 224; 256; 288 ]
  in
  let stream = List.init requests (fun i -> List.nth samples (i mod List.length samples)) in
  let bit_identical outs ref_outs =
    List.length outs = List.length ref_outs
    && List.for_all2
         (fun (ta, va) (tb, vb) ->
           ta = tb && Tensor.dims va = Tensor.dims vb
           && Tensor.data_f va = Tensor.data_f vb)
         outs ref_outs
  in
  let cfg =
    { RT.Executor.default_config with RT.Executor.memory = RT.Executor.Mem_arena }
  in
  let eng =
    RT.Engine.create ~workers:1 ~max_batch:4 ~queue_cap ~overload:RT.Engine.Shed_oldest
      ~config:cfg c
  in
  (* Warm the plan cache so steady-state service time, not compilation,
     decides what gets shed. *)
  List.iter (fun (env, inputs, _) -> ignore (RT.Engine.infer eng ~env ~inputs)) samples;
  let warmed = List.length samples in
  let t0 = Unix.gettimeofday () in
  let tickets =
    List.map
      (fun (env, inputs, reference) ->
        RT.Engine.submit eng ~deadline_us:10_000.0 ~env ~inputs, reference)
      stream
  in
  let ok = ref true in
  let completed = ref 0 in
  List.iter
    (fun (t, reference) ->
      match RT.Engine.await eng t with
      | r ->
        incr completed;
        if not (bit_identical r.RT.Engine.outputs reference) then begin
          ok := false;
          Printf.printf "  completed request NOT bit-identical to Reference!\n"
        end
      | exception Sod2_error.Error _ -> ())
    tickets;
  let dt = Unix.gettimeofday () -. t0 in
  RT.Engine.shutdown eng;
  let st = RT.Engine.stats eng in
  let settled =
    st.RT.Engine.completed + st.RT.Engine.failed + st.RT.Engine.shed
    + st.RT.Engine.rejected + st.RT.Engine.expired
  in
  Printf.printf "  flooded %d requests (queue cap %d, 10 ms deadline) in %.1f ms\n" requests
    queue_cap (dt *. 1e3);
  Printf.printf "  completed %d, shed %d, expired %d, rejected %d, failed %d\n"
    (st.RT.Engine.completed - warmed)
    st.RT.Engine.shed st.RT.Engine.expired st.RT.Engine.rejected st.RT.Engine.failed;
  Printf.printf "  latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms, queue peak %d\n"
    (st.RT.Engine.p50_latency_us /. 1e3)
    (st.RT.Engine.p95_latency_us /. 1e3)
    (st.RT.Engine.p99_latency_us /. 1e3)
    (st.RT.Engine.max_latency_us /. 1e3)
    st.RT.Engine.queue_peak;
  if settled <> st.RT.Engine.submitted then begin
    ok := false;
    Printf.printf "  CONSERVATION FAILURE: %d settled <> %d submitted\n" settled
      st.RT.Engine.submitted
  end;
  if st.RT.Engine.shed = 0 then begin
    ok := false;
    Printf.printf "  OVERLOAD FAILURE: flood past queue cap shed nothing\n"
  end;
  if
    not
      (st.RT.Engine.p50_latency_us <= st.RT.Engine.p95_latency_us
      && st.RT.Engine.p95_latency_us <= st.RT.Engine.p99_latency_us
      && st.RT.Engine.p99_latency_us <= st.RT.Engine.max_latency_us +. 1e-9
      && st.RT.Engine.p99_latency_us > 0.0)
  then begin
    ok := false;
    Printf.printf "  PERCENTILE FAILURE: p50/p95/p99/max not ordered or p99 = 0\n"
  end;
  let oc = open_out "BENCH_overload.json" in
  Printf.fprintf oc
    "{\n  \"workload\": {\"steps\": %d, \"cols\": %d, \"requests\": %d, \"queue_cap\": %d, \
     \"deadline_ms\": 10.0, \"policy\": \"shed\"},\n"
    steps cols requests queue_cap;
  Printf.fprintf oc "  \"wall_ms\": %.3f,\n" (dt *. 1e3);
  Printf.fprintf oc
    "  \"outcomes\": {\"submitted\": %d, \"completed\": %d, \"shed\": %d, \"expired\": %d, \
     \"rejected\": %d, \"failed\": %d},\n"
    st.RT.Engine.submitted st.RT.Engine.completed st.RT.Engine.shed st.RT.Engine.expired
    st.RT.Engine.rejected st.RT.Engine.failed;
  Printf.fprintf oc
    "  \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n"
    (st.RT.Engine.p50_latency_us /. 1e3)
    (st.RT.Engine.p95_latency_us /. 1e3)
    (st.RT.Engine.p99_latency_us /. 1e3)
    (st.RT.Engine.max_latency_us /. 1e3);
  Printf.fprintf oc "  \"conserved\": %b, \"deadlock_free\": true, \"bit_identical\": %b\n}\n"
    (settled = st.RT.Engine.submitted) !ok;
  close_out oc;
  Printf.printf "  wrote BENCH_overload.json\n";
  if not !ok then begin
    Printf.printf "  engine overload smoke FAILED\n";
    exit 1
  end;
  Printf.printf
    "  all tickets settled (no deadlock); conservation holds; sheds > 0; percentiles ordered\n"

(* Int8 smoke: the quantized GEMM with its fused requantization epilogue
   against the f32 blocked GEMM on the 256³ memory-bound shape.  The int8
   kernel moves 4x fewer panel bytes and its packed-pair micro-kernel does
   one multiply per two MACs, so the gate demands a real win (≥1.5x), not
   parity.  A bit-exactness spot check against the scalar reference runs
   first — a fast wrong kernel must not pass. *)
let int8_bench () =
  Printf.printf "\n=== Int8: quantized GEMM + fused requantize vs f32 blocked ===\n";
  let filled_i8 len seed =
    let t =
      Tensor.of_ints Tensor.I8 [ len ]
        (Array.init len (fun i -> (((i * 7919) + seed) mod 255) - 127))
    in
    Tensor.storage_i8 t
  in
  (* correctness gate first: fused kernel vs independent scalar reference *)
  let check_m, check_n, check_k = 65, 63, 130 in
  let ca = Tensor.of_i8buf [ check_m; check_k ] (filled_i8 (check_m * check_k) 3) in
  let cb = Tensor.of_i8buf [ check_k; check_n ] (filled_i8 (check_k * check_n) 11) in
  let za = 7 and zb = -4 in
  let rq = Quant.requant_of_scales ~in_scale:0.02 ~w_scale:0.015 ~out_scale:0.05 ~zp_out:(-8) in
  let cc =
    Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout (check_m * check_n)
  in
  Blocked.gemm_i8 ~za ~zb
    ~epilogue:(fun _ acc -> Quant.requantize_one rq acc)
    ~m:check_m ~n:check_n ~k:check_k ~a:(Tensor.storage_i8 ca) ~ao:0
    ~b:(Tensor.storage_i8 cb) ~bo:0 ~c:cc ~co:0 ();
  let accs = RT.Reference.gemm_i8_acc ~za ~zb ~m:check_m ~n:check_n ~k:check_k ca cb in
  let exact = ref true in
  Array.iteri
    (fun i acc ->
      if
        Bigarray.Array1.get cc i
        <> RT.Reference.requantize ~qm:rq.Quant.qm ~shift:rq.Quant.shift ~zp:rq.Quant.zp acc
      then exact := false)
    accs;
  Printf.printf "  bit-exact vs scalar reference (%dx%dx%d): %s\n" check_m check_n
    check_k
    (if !exact then "yes" else "NO");
  if not !exact then begin
    Printf.printf "  int8 GEMM bit-exactness FAILED\n";
    exit 1
  end;
  (* The 1.5x gate rides on the f32/int8 ratio, so measure it with the
     robust statistic: alternate the two kernels round-for-round and
     take each one's MINIMUM — means drift with whatever else the host
     is doing, minima don't, and interleaving exposes both kernels to
     the same phases of any background load. *)
  let time_min2 rounds f g =
    f ();
    g ();
    let bf = ref infinity and bg = ref infinity in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      f ();
      let t1 = Unix.gettimeofday () in
      g ();
      let t2 = Unix.gettimeofday () in
      if t1 -. t0 < !bf then bf := t1 -. t0;
      if t2 -. t1 < !bg then bg := t2 -. t1
    done;
    (!bf, !bg)
  in
  (* throughput: 256³ *)
  let m, n, k = 256, 256, 256 in
  let fa = filled (m * k) and fb = filled (k * n) in
  let fc = Tensor.fbuf_create Tensor.F32 (m * n) in
  let qa = filled_i8 (m * k) 5 and qb = filled_i8 (k * n) 23 in
  let qc = Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout (m * n) in
  let ep _ acc = Quant.requantize_one rq acc in
  let t_f32, t_i8 =
    time_min2 30
      (fun () ->
        Tensor.fbuf_fill fc 0 (m * n) 0.0;
        Blocked.gemm ~m ~n ~k ~a:fa ~ao:0 ~b:fb ~bo:0 ~c:fc ~co:0 ())
      (fun () ->
        Blocked.gemm_i8 ~za ~zb ~epilogue:ep ~m ~n ~k ~a:qa ~ao:0 ~b:qb ~bo:0 ~c:qc
          ~co:0 ())
  in
  let speedup = t_f32 /. t_i8 in
  Printf.printf "  gemm 256^3:    f32 %8.3f ms   int8+requant %8.3f ms   %5.2fx\n"
    (t_f32 *. 1e3) (t_i8 *. 1e3) speedup;
  (* conv, informational: same kernels under im2col *)
  let xd = [| 1; 64; 28; 28 |] and wd = [| 64; 64; 3; 3 |] in
  let nx = Array.fold_left ( * ) 1 xd and nw = Array.fold_left ( * ) 1 wd in
  let rng = Rng.create 29 in
  let x = Tensor.rand_uniform rng (Array.to_list xd) in
  let w = Tensor.rand_uniform rng (Array.to_list wd) in
  let qx = filled_i8 nx 31 and qw = filled_i8 nw 37 in
  let qo =
    Bigarray.Array1.create Bigarray.int8_signed Bigarray.c_layout (64 * 28 * 28)
  in
  let t_conv_f32, t_conv_i8 =
    time_min2 12
      (fun () ->
        ignore
          (Blocked.conv2d_im2col ~stride:(1, 1) ~pad:(1, 1, 1, 1) ~dilation:(1, 1)
             ~groups:1 x w None))
      (fun () ->
        ignore
          (Blocked.conv2d_i8_into ~zx:za ~zw:0 ~epilogue:ep ~stride:(1, 1)
             ~pad:(1, 1, 1, 1) ~dilation:(1, 1) ~groups:1 ~x:qx ~xoff:0 ~xdims:xd
             ~w:qw ~woff:0 ~wdims:wd ~c:qo ~co:0 ()))
  in
  Printf.printf "  conv 64x64x3^2: f32 %8.3f ms   int8+requant %8.3f ms   %5.2fx\n"
    (t_conv_f32 *. 1e3) (t_conv_i8 *. 1e3)
    (t_conv_f32 /. t_conv_i8);
  let oc = open_out "BENCH_int8.json" in
  Printf.fprintf oc
    "{\n  \"gemm_256\": {\"f32_ms\": %.4f, \"int8_ms\": %.4f, \"speedup\": %.3f},\n"
    (t_f32 *. 1e3) (t_i8 *. 1e3) speedup;
  Printf.fprintf oc
    "  \"conv_64x64\": {\"f32_ms\": %.4f, \"int8_ms\": %.4f, \"speedup\": %.3f},\n"
    (t_conv_f32 *. 1e3) (t_conv_i8 *. 1e3)
    (t_conv_f32 /. t_conv_i8);
  Printf.fprintf oc "  \"bit_exact_vs_reference\": %b, \"gate_floor\": 1.5\n}\n" !exact;
  close_out oc;
  Printf.printf "  wrote BENCH_int8.json\n";
  if speedup < 1.5 then begin
    Printf.printf "  int8 GEMM not ≥1.5x faster than f32 (%.2fx) — FAIL\n" speedup;
    exit 1
  end

(* Tune smoke: does closing the loop with measured timings actually pay?
   At one fat and one skinny GEMM shape, time the default config (what an
   untuned static backend choice runs), the analytical GA pick (what
   compile-time MVC tuning runs) and the measured Hybrid pick on the same
   kernel and buffers, then gate: the measured pick must not lose to
   either static choice on the shape-sweep geomean.  A small tolerance
   absorbs re-measurement noise — the Hybrid pick's own tuning-time
   measurement already included both static configs in its finalist pool,
   so a real loss would mean the measurement harness is lying. *)
let tune_bench () =
  Printf.printf "\n=== Measured kernel tuning: default vs analytical vs measured ===\n";
  let rounds = 3 in
  let shapes = [ "fat", (512, 512, 256); "skinny", (4, 512, 256) ] in
  let rows =
    List.map
      (fun (cls, (m, n, k)) ->
        let measure = Sod2.Tune_measure.gemm_measurer ~rounds ~m ~n ~k () in
        let default_us = measure Sod2.Autotune.default_config in
        let analytic_cfg, _ = Sod2.Autotune.tune cpu (Rng.create 7) ~m ~n ~k in
        let analytic_us = measure analytic_cfg in
        let measured_cfg, _ =
          Sod2.Autotune.tune ~objective:Sod2.Autotune.Hybrid ~measure cpu
            (Rng.create 7) ~m ~n ~k
        in
        let measured_us = measure measured_cfg in
        Printf.printf
          "  %-7s %4dx%4dx%4d: default %8.3f ms, analytical %8.3f ms, measured \
           %8.3f ms  (%s)\n"
          cls m n k (default_us /. 1e3) (analytic_us /. 1e3) (measured_us /. 1e3)
          (Sod2.Autotune.config_to_string measured_cfg);
        cls, (m, n, k), default_us, analytic_us, measured_us, measured_cfg)
      shapes
  in
  let gm pick = geomean (List.map pick rows) in
  let g_default = gm (fun (_, _, d, _, _, _) -> d) in
  let g_analytic = gm (fun (_, _, _, a, _, _) -> a) in
  let g_measured = gm (fun (_, _, _, _, ms, _) -> ms) in
  let tolerance = 1.05 in
  let beats_default = g_measured <= g_default *. tolerance in
  let beats_analytic = g_measured <= g_analytic *. tolerance in
  Printf.printf
    "  geomean: default %.3f ms, analytical %.3f ms, measured %.3f ms  (%.2fx vs \
     default, %.2fx vs analytical)\n"
    (g_default /. 1e3) (g_analytic /. 1e3) (g_measured /. 1e3)
    (g_default /. g_measured) (g_analytic /. g_measured);
  let oc = open_out "BENCH_tune.json" in
  Printf.fprintf oc "{\n  \"rounds\": %d,\n  \"shapes\": [\n" rounds;
  List.iteri
    (fun i (cls, (m, n, k), d, a, ms, cfg) ->
      Printf.fprintf oc
        "    {\"class\": %S, \"m\": %d, \"n\": %d, \"k\": %d, \"default_ms\": %.3f, \
         \"analytical_ms\": %.3f, \"measured_ms\": %.3f, \"measured_config\": %S}%s\n"
        cls m n k (d /. 1e3) (a /. 1e3) (ms /. 1e3)
        (Sod2.Autotune.config_to_string cfg)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"geomean\": {\"default_ms\": %.3f, \"analytical_ms\": %.3f, \
     \"measured_ms\": %.3f},\n"
    (g_default /. 1e3) (g_analytic /. 1e3) (g_measured /. 1e3);
  Printf.fprintf oc
    "  \"measured_beats_default\": %b, \"measured_beats_analytical\": %b,\n"
    beats_default beats_analytic;
  Printf.fprintf oc "  \"tune_measurements\": %d\n}\n"
    (Sod2.Tune_measure.measurement_count ());
  close_out oc;
  Printf.printf "  wrote BENCH_tune.json\n";
  if not (beats_default && beats_analytic) then begin
    Printf.printf "  measured pick LOST the geomean to a static config — FAIL\n";
    exit 1
  end;
  Printf.printf "  measured pick holds the geomean against both static configs\n"

(* ------------------------------------------------------------------ *)
(* Multi-version plans: single-plan (all-paths) vs variant execution   *)
(* ------------------------------------------------------------------ *)

(* What a single ahead-of-time plan means for a gated model: one exec
   order and one memory plan covering every branch, so every request
   executes all paths and lets each Combine pick the surviving value --
   the operator-level baseline of the paper's Fig. 7 (and the situation
   DyCL/Nimble motivate multi-versioning from).  The multi-version side
   compiles per-outcome variants ahead of time (--compile variants=8),
   so the realized outcome vector selects a pruned straight-line plan
   with dead branches absent and zero per-node branch resolution.
   Both sides run the same blocked kernels over the same persistent
   arena; outputs must agree bit-for-bit between them and within float
   tolerance of the scalar reference interpreter. *)
let variant_bench () =
  Printf.printf "\n=== Multi-version plans: single-plan (all-paths) vs variant execution ===\n";
  let requests = 8 and warmup = 2 in
  let run_model name =
    let sp = fixture name in
    let g = graph_of sp in
    let env = Zoo.min_env sp in
    let inputs = Zoo.make_inputs sp g env (Rng.create 42) in
    let reference = RT.Reference.run g ~inputs in
    let opts =
      match Sod2.Compile_opts.of_string "variants=8" with
      | Ok o -> o
      | Error e -> invalid_arg e
    in
    let c = Sod2.Pipeline.compile ~opts cpu g in
    let be = RT.Backend.for_compiled RT.Backend.Blocked c in
    Fun.protect ~finally:(fun () -> RT.Backend.shutdown be) @@ fun () ->
    let arena = RT.Arena.create () in
    let memory = RT.Executor.Arena { arena; env } in
    (* Learn the realized outcome vector from one any-path run, exactly
       as the serving layer does from trace gate observations. *)
    let tr, selected = RT.Executor.run_real ~backend:be ~memory c ~inputs in
    let gates = c.Sod2.Pipeline.control.Control_region.gates in
    let outcome =
      Array.map
        (fun gt ->
          match List.assoc_opt gt.Control_region.g_pred tr.RT.Executor.gate_outcomes with
          | Some b -> b
          | None -> -1)
        gates
    in
    let ok = ref true in
    let check tag outs want ~eps =
      List.iter2
        (fun (ta, va) (tb, vb) ->
          let agree =
            ta = tb
            && (if eps > 0.0 then Tensor.approx_equal ~eps va vb else Tensor.equal va vb)
          in
          if not agree then begin
            ok := false;
            Printf.printf "  %s: %s outputs DIVERGE!\n" name tag
          end)
        outs want
    in
    let timed f =
      for _ = 1 to warmup do ignore (f ()) done;
      let t0 = Unix.gettimeofday () in
      let last = ref [] in
      for _ = 1 to requests do last := f () done;
      (Unix.gettimeofday () -. t0, !last)
    in
    let single_dt, single_outs =
      timed (fun () ->
          snd
            (RT.Executor.run_real ~control:RT.Executor.All_paths ~backend:be ~memory c
               ~inputs))
    in
    let runs0 =
      Profile.Counters.count ~profile:cpu.Profile.name ~kind:"variant-run"
    in
    let scans0 =
      Profile.Counters.count ~profile:cpu.Profile.name ~kind:"exec-ready-scan"
    in
    let variant_dt, variant_outs =
      timed (fun () ->
          snd (RT.Executor.run_real ~backend:be ~memory ~outcomes:outcome c ~inputs))
    in
    let variant_runs =
      Profile.Counters.count ~profile:cpu.Profile.name ~kind:"variant-run" - runs0
    in
    let ready_scans =
      Profile.Counters.count ~profile:cpu.Profile.name ~kind:"exec-ready-scan" - scans0
    in
    check "single-plan vs selected" single_outs selected ~eps:0.0;
    check "variant vs single-plan" variant_outs single_outs ~eps:0.0;
    check "variant vs reference" variant_outs reference ~eps:1e-4;
    if variant_runs <> warmup + requests then begin
      ok := false;
      Printf.printf "  %s: only %d/%d runs took the variant plan!\n" name variant_runs
        (warmup + requests)
    end;
    if ready_scans <> 0 then begin
      ok := false;
      Printf.printf "  %s: variant runs performed %d readiness scans!\n" name ready_scans
    end;
    if not !ok then begin
      Printf.printf "  %s: variant smoke FAILED\n" name;
      exit 1
    end;
    let gates_n = Array.length gates in
    let speedup = single_dt /. variant_dt in
    let nvariants = Hashtbl.length c.Sod2.Pipeline.variants in
    Printf.printf
      "  %-10s %2d gates, %d variant plan%s: all-paths %7.1f ms, variant %7.1f ms  (%.2fx)\n"
      name gates_n nvariants
      (if nvariants = 1 then "" else "s")
      (single_dt *. 1e3) (variant_dt *. 1e3) speedup;
    name, gates_n, nvariants, single_dt, variant_dt, speedup
  in
  let rows = List.map run_model [ "skipnet"; "blockdrop" ] in
  let gm = geomean (List.map (fun (_, _, _, _, _, s) -> s) rows) in
  Printf.printf "  gated-path geomean: %.2fx (gate: >= 1.15x)\n" gm;
  let oc = open_out "BENCH_variants.json" in
  Printf.fprintf oc "{\n  \"requests\": %d, \"warmup\": %d,\n  \"models\": [\n" requests
    warmup;
  List.iteri
    (fun i (name, gates, nvariants, single_dt, variant_dt, speedup) ->
      Printf.fprintf oc
        "    {\"model\": \"%s\", \"gates\": %d, \"variant_plans\": %d, \
         \"single_plan_ms\": %.3f, \"variant_ms\": %.3f, \"speedup\": %.3f}%s\n"
        name gates nvariants (single_dt *. 1e3) (variant_dt *. 1e3) speedup
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"geomean_speedup\": %.3f, \"gate\": 1.15, \"pass\": %b\n}\n"
    gm (gm >= 1.15);
  close_out oc;
  Printf.printf "  wrote BENCH_variants.json\n";
  if gm < 1.15 then begin
    Printf.printf "  variant execution LOST the gated-path geomean — FAIL\n";
    exit 1
  end;
  Printf.printf "  variant execution holds the gated-path geomean\n"

let backend_smoke kind =
  let bert_g = graph_of bert in
  let c = Framework.compiled (sess Framework.Sod2_fw cpu bert) in
  let be = RT.Backend.for_compiled kind c in
  Fun.protect
    ~finally:(fun () -> RT.Backend.shutdown be)
    (fun () ->
      let env = Env.of_list [ "S", 32 ] in
      let inputs = Zoo.make_inputs bert bert_g env (Rng.create 5) in
      let trace, _ = RT.Executor.run_real ~backend:be c ~inputs in
      Printf.printf
        "\n=== Backend smoke: codebert S=32 on %s backend — %d nodes, %d domains ===\n"
        (RT.Backend.kind_name kind) trace.RT.Executor.nodes_executed
        (RT.Backend.pool_size be);
      if kind = RT.Backend.Fused then begin
        let fs = RT.Backend.fused_stats be in
        Printf.printf "    fused kernels: %d hits, %d misses, %d rejects, %d variants\n"
          fs.RT.Backend.hits fs.RT.Backend.misses fs.RT.Backend.rejects
          fs.RT.Backend.variants
      end)

let run_benchmarks () =
  let grouped = Test.make_grouped ~name:"sod2" ~fmt:"%s/%s" (tests ()) in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []) in
  Printf.printf "\n=== Bechamel micro-benchmarks (wall-clock per run) ===\n";
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
          else Printf.sprintf "%8.0f ns" ns
        in
        Printf.printf "  %-44s %s\n" name pretty
      | _ -> Printf.printf "  %-44s (no estimate)\n" name)
    rows

let () =
  if !run_tables then begin
    Printf.printf
      "SoD2 reproduction — regenerating every table and figure (%d samples/model)\n"
      !samples;
    List.iter Sod2_experiments.Table.print (E.all ~n:!samples ())
  end;
  if !run_kernels then begin
    kernel_speedups ();
    fused_speedups ()
  end;
  if !run_arena || !arena_smoke then arena_bench ~smoke:!arena_smoke ();
  if !engine_smoke then engine_bench ();
  if !engine_overload_smoke then engine_overload_bench ();
  if !int8_smoke then int8_bench ();
  if !tune_smoke then tune_bench ();
  if !variant_smoke then variant_bench ();
  (match !smoke_backend with
  | Some kind -> backend_smoke kind
  | None -> ());
  if !run_bechamel then run_benchmarks ()
